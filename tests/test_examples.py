"""Smoke tests: every example script must run to completion.

The examples are deliverables; this keeps them from rotting.  Each runs
in a subprocess at reduced scale where the script supports it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: (script, extra argv) — sized to keep the whole module under ~2 min.
EXAMPLES = [
    ("quickstart.py", []),
    ("phone_warehouse.py", ["400"]),
    ("stock_analysis.py", []),
    ("datacube_sales.py", []),
    ("visualization.py", []),
    ("robust_and_updates.py", []),
    ("patient_records.py", []),
    ("warehouse_analytics.py", []),
    ("text_retrieval.py", []),
]


@pytest.mark.parametrize("script,argv", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, argv):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert "done." in result.stdout


def test_every_example_file_is_covered():
    """Adding an example without wiring it here should fail loudly."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _argv in EXAMPLES}
    assert on_disk == covered
