"""3-mode PCA (Tucker decomposition) — the paper's cited alternative for
DataCube compression (Section 6.1).

Approximates a cube element as

    x_ijk ~ sum_{h,l,r} a_ih * b_jl * c_kr * g_hlr

with factor matrices ``A`` (I x r1), ``B`` (J x r2), ``C`` (K x r3) and
a small core tensor ``G``.  Fitting is HOSVD (truncated eigenvectors of
each mode's unfolding) followed by HOOI alternating-least-squares
refinement, both built on the same symmetric eigensolvers as the matrix
path.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import BYTES_PER_VALUE
from repro.exceptions import ConfigurationError, QueryError, ShapeError
from repro.linalg import SymmetricEigensolver, default_eigensolver


def _unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding: that axis becomes rows, the rest columns."""
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def _mode_multiply(tensor: np.ndarray, matrix: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` product: contract the tensor's axis with matrix columns."""
    moved = np.moveaxis(tensor, mode, 0)
    shape = moved.shape
    result = matrix @ moved.reshape(shape[0], -1)
    return np.moveaxis(result.reshape((matrix.shape[0],) + shape[1:]), 0, mode)


def tucker3_space_bytes(
    shape: tuple[int, int, int], ranks: tuple[int, int, int]
) -> int:
    """Model size: three factor matrices plus the core tensor."""
    factors = sum(dim * rank for dim, rank in zip(shape, ranks))
    core = int(np.prod(ranks))
    return (factors + core) * BYTES_PER_VALUE


class Tucker3:
    """Rank-``(r1, r2, r3)`` Tucker model of a 3-d cube.

    Args:
        ranks: per-mode ranks.
        hooi_iterations: ALS refinement sweeps after the HOSVD
            initialization (0 = plain HOSVD).
        eigensolver: solver for the per-mode Gram eigenproblems.
    """

    def __init__(
        self,
        ranks: tuple[int, int, int],
        hooi_iterations: int = 5,
        eigensolver: SymmetricEigensolver | None = None,
    ) -> None:
        if len(ranks) != 3 or any(r < 1 for r in ranks):
            raise ConfigurationError(f"ranks must be three positive ints, got {ranks}")
        if hooi_iterations < 0:
            raise ConfigurationError(
                f"hooi_iterations must be >= 0, got {hooi_iterations}"
            )
        self.ranks = tuple(int(r) for r in ranks)
        self.hooi_iterations = hooi_iterations
        self.eigensolver = eigensolver or default_eigensolver()
        self.factors: list[np.ndarray] | None = None
        self.core: np.ndarray | None = None
        self._shape: tuple[int, int, int] | None = None

    def _leading_eigenvectors(self, unfolding: np.ndarray, rank: int) -> np.ndarray:
        gram = unfolding @ unfolding.T
        gram = (gram + gram.T) / 2.0
        result = self.eigensolver.decompose_top(gram, min(rank, gram.shape[0]))
        return result.vectors

    def fit(self, cube: np.ndarray) -> "Tucker3":
        """Fit the model; returns self."""
        tensor = np.asarray(cube, dtype=np.float64)
        if tensor.ndim != 3:
            raise ShapeError(f"Tucker3 needs a 3-d cube, got ndim {tensor.ndim}")
        self._shape = tuple(tensor.shape)
        ranks = tuple(min(r, dim) for r, dim in zip(self.ranks, tensor.shape))

        # HOSVD initialization: leading eigenvectors of each unfolding.
        factors = [
            self._leading_eigenvectors(_unfold(tensor, mode), ranks[mode])
            for mode in range(3)
        ]
        # HOOI refinement: optimize each factor against the others.
        for _ in range(self.hooi_iterations):
            for mode in range(3):
                partial = tensor
                for other in range(3):
                    if other != mode:
                        partial = _mode_multiply(partial, factors[other].T, other)
                factors[mode] = self._leading_eigenvectors(
                    _unfold(partial, mode), ranks[mode]
                )
        core = tensor
        for mode in range(3):
            core = _mode_multiply(core, factors[mode].T, mode)
        self.factors = factors
        self.core = core
        return self

    def _require_fitted(self) -> None:
        if self.factors is None or self.core is None:
            raise ConfigurationError("Tucker3 model is not fitted; call fit() first")

    def reconstruct(self) -> np.ndarray:
        """Materialize the approximate cube."""
        self._require_fitted()
        out = self.core
        for mode in range(3):
            out = _mode_multiply(out, self.factors[mode], mode)
        return out

    def reconstruct_cell(self, i: int, j: int, k: int) -> float:
        """One cube cell in O(r1 * r2 * r3)."""
        self._require_fitted()
        for axis, (idx, extent) in enumerate(zip((i, j, k), self._shape)):
            if not 0 <= idx < extent:
                raise QueryError(f"index {idx} out of range on axis {axis}")
        a, b, c = self.factors
        return float(np.einsum("h,l,r,hlr->", a[i], b[j], c[k], self.core))

    def space_bytes(self) -> int:
        """Model size under the paper's accounting."""
        self._require_fitted()
        return tucker3_space_bytes(
            self._shape, tuple(f.shape[1] for f in self.factors)
        )
