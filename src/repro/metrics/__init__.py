"""Error measures used throughout the paper's evaluation.

- :func:`rmspe` — Definition 5.1: root-mean-squared reconstruction
  error normalized by the standard deviation of the data around its
  global mean cell value;
- :func:`worst_case_error` — the per-cell maximum absolute error, raw
  and normalized (Table 3, Table 4, Figure 7);
- :func:`error_distribution` — per-cell absolute errors rank-ordered
  descending (Figure 8);
- :func:`query_error` — the relative aggregate-query error Q_err of
  Eq. 14 (Figure 9);
- :func:`median_error` and :func:`error_percentiles` — the Section 5.1
  observation that median error is orders of magnitude below the mean.
"""

from repro.metrics.errors import (
    ErrorSummary,
    error_percentiles,
    error_summary,
    median_error,
    query_error,
    rmspe,
    worst_case_error,
)
from repro.metrics.distribution import error_distribution, StreamingErrorAccumulator
from repro.metrics.profiles import ErrorProfile, delta_coverage, error_profile

__all__ = [
    "ErrorProfile",
    "ErrorSummary",
    "delta_coverage",
    "error_profile",
    "StreamingErrorAccumulator",
    "error_distribution",
    "error_percentiles",
    "error_summary",
    "median_error",
    "query_error",
    "rmspe",
    "worst_case_error",
]
