#!/usr/bin/env python3
"""Dataset visualization in SVD space (paper Appendix A).

SVD compression yields the 2-d projection of every time sequence 'for
free'.  This example draws the paper's Fig. 11 for both datasets as
terminal scatter plots, reads off the structure the paper discusses
(Zipf skew in the phone data, the market factor in stocks), and shows
how the scatter outliers relate to SVDD's stored deltas.

Run:  python examples/visualization.py
"""

from __future__ import annotations

import numpy as np

from repro import SVDDCompressor
from repro.data import phone_matrix, stocks_matrix
from repro.viz import ascii_scatter, outlier_rows, scatter_coordinates


def show(name: str, matrix: np.ndarray, commentary: str) -> None:
    coords = scatter_coordinates(matrix, dimensions=2)
    print(f"=== {name} in 2-d SVD space ===")
    print(ascii_scatter(coords, width=70, height=18))
    exceptional = outlier_rows(coords)
    print(f"scatter outliers (rows): {exceptional.tolist()[:15]}")
    print(commentary)
    print()


def outliers_become_deltas(matrix: np.ndarray) -> None:
    """Appendix A's closing point: instead of spending extra principal
    components on the scatter outliers, SVDD stores their deltas."""
    print("=== scatter outliers vs SVDD deltas ===")
    coords = scatter_coordinates(matrix, dimensions=2)
    scatter_rows = set(outlier_rows(coords).tolist())
    model = SVDDCompressor(budget_fraction=0.05).fit(matrix)
    delta_rows = {row for row, _col, _delta in model.outlier_cells()}
    overlap = scatter_rows & delta_rows
    print(
        f"rows flagged by the scatter plot: {len(scatter_rows)}; "
        f"rows holding stored deltas: {len(delta_rows)}; "
        f"overlap: {len(overlap)}"
    )
    print(
        "'Instead of using additional principal components to achieve better\n"
        " approximations for them, it is much cheaper to store their deltas.'\n"
    )


if __name__ == "__main__":
    phone = phone_matrix(2000)
    stocks = stocks_matrix(381)
    show(
        "phone2000",
        phone,
        "Most customers concentrate near the origin with a few huge-volume\n"
        "exceptions — the Zipf-like skew the paper reads off this plot.",
    )
    show(
        "stocks",
        stocks,
        "Points hug the horizontal (market) axis: most stocks follow the\n"
        "general market pattern; the few off-axis points are the analyst's\n"
        "watch list.",
    )
    outliers_become_deltas(phone)
    print("done.")
