"""Model verification: audit a compressed model against its source.

An operator's tool: given the raw :class:`~repro.storage.MatrixStore`
(or matrix) and a :class:`~repro.core.store.CompressedMatrix` (or
in-memory model), stream both once and produce a report of every error
measure the paper uses, plus integrity checks (shape agreement, delta
validity, certified bound).  Used after builds, rebuilds, and restores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import SVDDModel, SVDModel
from repro.core.store import CompressedMatrix
from repro.exceptions import ShapeError
from repro.metrics.distribution import StreamingErrorAccumulator
from repro.storage.matrix_store import MatrixStore


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a model audit."""

    rows: int
    cols: int
    rmspe: float
    max_abs_error: float
    max_normalized_error: float
    num_deltas: int
    certified_bound: float | None
    bound_holds: bool | None

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"matrix: {self.rows} x {self.cols}",
            f"RMSPE: {self.rmspe:.6f}",
            f"worst cell error: {self.max_abs_error:.6g} "
            f"({self.max_normalized_error:.2%} of a std dev)",
            f"stored deltas: {self.num_deltas}",
        ]
        if self.certified_bound is not None:
            status = "HOLDS" if self.bound_holds else "VIOLATED"
            lines.append(
                f"certified worst-case bound: {self.certified_bound:.6g} [{status}]"
            )
        return "\n".join(lines)

    @property
    def ok(self) -> bool:
        """True when all integrity checks passed."""
        return self.bound_holds is not False


def _rows_of(source) -> tuple[tuple[int, int], callable]:
    if isinstance(source, MatrixStore):
        return source.shape, source.row
    arr = np.asarray(source, dtype=np.float64)
    if arr.ndim != 2:
        raise ShapeError("source must be 2-d")
    return tuple(arr.shape), lambda i: arr[i]


def _model_rows_of(model) -> tuple[tuple[int, int], callable]:
    if isinstance(model, CompressedMatrix):
        return model.shape, model.row
    if isinstance(model, (SVDModel, SVDDModel)):
        return model.shape, model.reconstruct_row
    raise ShapeError(
        f"unsupported model type {type(model).__name__}"
    )


def verify_model(source, model) -> VerificationReport:
    """Audit ``model`` against ``source``; one streamed pass over each.

    Raises :class:`ShapeError` on shape disagreement; bound violations
    are *reported*, not raised (``report.ok``), so operators see the
    numbers.
    """
    src_shape, src_row = _rows_of(source)
    mdl_shape, mdl_row = _model_rows_of(model)
    if src_shape != mdl_shape:
        raise ShapeError(
            f"source shape {src_shape} != model shape {mdl_shape}"
        )

    acc = StreamingErrorAccumulator()
    for index in range(src_shape[0]):
        acc.add_row(src_row(index), mdl_row(index))

    num_deltas = getattr(model, "num_deltas", 0)
    certified = None
    holds = None
    if isinstance(model, SVDDModel):
        certified = model.worst_case_bound()
    elif isinstance(model, CompressedMatrix) and model.num_deltas > 0:
        deltas = model._deltas
        certified = min(abs(delta) for _key, delta in deltas.items())
    if certified is not None and np.isfinite(certified):
        holds = acc.max_abs_error() <= certified + 1e-9

    return VerificationReport(
        rows=src_shape[0],
        cols=src_shape[1],
        rmspe=acc.rmspe(),
        max_abs_error=acc.max_abs_error(),
        max_normalized_error=acc.max_normalized_error(),
        num_deltas=num_deltas,
        certified_bound=certified,
        bound_holds=holds,
    )
