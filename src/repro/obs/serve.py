"""Embedded HTTP plumbing for serving processes: metrics endpoint,
health states, and graceful drain.

Two layers live here:

- :class:`GracefulHTTPServer` + :class:`HealthState` +
  :class:`BaseEndpointHandler` — the stdlib-only serving substrate
  (``http.server.ThreadingHTTPServer`` in a daemon thread) shared by
  the metrics endpoint below and the query tier in
  :mod:`repro.serve.server`.  The server counts in-flight requests so
  :meth:`GracefulHTTPServer.drain` can wait them out under a bounded
  grace period, and the health state splits *liveness* (the process is
  up) from *readiness* (it should receive new traffic) the way
  orchestrators expect: a draining process is still live — don't
  restart it — but not ready — stop routing to it.

- :class:`MetricsServer` — the observability surface of a serving
  process:

  - ``GET /metrics`` — OpenMetrics exposition text from
    :func:`repro.obs.export.render_openmetrics`, scrapeable by
    Prometheus;
  - ``GET /healthz`` — liveness probe, always ``ok`` (kept as the
    bare-liveness spelling for existing scrapers);
  - ``GET /healthz/live`` — explicit liveness, always ``ok``;
  - ``GET /healthz/ready`` — readiness: ``200 ready`` until the server
    starts draining, then ``503 draining``;
  - ``GET /snapshot`` — the raw JSON registry snapshot (what
    ``repro top`` polls: it needs counter values to difference into
    rates, which the rendered text would make it re-parse).

The metrics server holds no query-path locks: every request just calls
``registry.snapshot()``, which reads each metric under its own short
lock.  ``repro serve-metrics`` wraps this in a CLI; embedders use it
directly::

    with MetricsServer(port=9464) as server:
        print(server.url)        # http://127.0.0.1:9464
        ...                      # serve queries; scrape any time
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import render_openmetrics
from repro.obs.registry import MetricsRegistry, registry as _default_registry

__all__ = [
    "BaseEndpointHandler",
    "GracefulHTTPServer",
    "HealthState",
    "MetricsServer",
    "OPENMETRICS_CONTENT_TYPE",
]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class HealthState:
    """Liveness/readiness split for a serving process.

    Liveness is implicit — if the process answers HTTP at all, it is
    live.  Readiness is an explicit flag the owner flips: True once the
    server is warmed up and accepting traffic, False the moment a drain
    begins (SIGTERM) so load balancers stop routing to it while
    in-flight requests finish.
    """

    def __init__(self) -> None:
        self._ready = threading.Event()

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def set_ready(self, ready: bool = True) -> None:
        """Flip readiness; draining servers flip it off first."""
        if ready:
            self._ready.set()
        else:
            self._ready.clear()


class GracefulHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that can drain in-flight requests.

    ``ThreadingHTTPServer.shutdown()`` only stops the accept loop;
    handler threads already running keep going, and ``server_close()``
    yanks the listening socket out from under them.  This subclass
    counts requests as its handler threads enter and leave, so
    :meth:`drain` can block — bounded by a grace period — until the
    tail request has written its response.
    """

    daemon_threads = True
    #: Listen backlog.  socketserver's default of 5 overflows under a
    #: burst of concurrent connections, and an overflowed backlog shows
    #: up as 1s/3s SYN-retransmit latency spikes on *admitted* requests
    #: — the admission queue, not the kernel, is where this tier sheds.
    request_queue_size = 128

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._active = 0
        self._active_cond = threading.Condition()

    def process_request_thread(self, request, client_address) -> None:
        with self._active_cond:
            self._active += 1
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._active_cond:
                self._active -= 1
                self._active_cond.notify_all()

    @property
    def active_requests(self) -> int:
        with self._active_cond:
            return self._active

    def drain(self, grace_s: float) -> bool:
        """Wait until no requests are in flight, bounded by ``grace_s``.

        Returns True when the server drained fully, False when the
        grace period expired with requests still running (the caller
        closes anyway — bounded beats graceful when they conflict).
        """
        deadline = time.monotonic() + max(0.0, grace_s)
        with self._active_cond:
            while self._active > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._active_cond.wait(timeout=remaining)
        return True


class BaseEndpointHandler(BaseHTTPRequestHandler):
    """Shared request-handler plumbing: replies, health routes, quiet logs.

    Subclasses set ``health`` (class attribute, bound per-server) and
    route unknown paths through :meth:`handle_health` before 404ing.
    """

    protocol_version = "HTTP/1.1"

    # Bound by the owning server object before serving starts.
    health: HealthState | None = None

    def _reply(
        self,
        status: int,
        content_type: str,
        body: bytes,
        extra_headers: dict | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        # One request per connection: an idle keep-alive connection
        # would pin a handler thread and stall drain() at its grace
        # cap, so the in-flight count must mean *requests*, not
        # connections.  (send_header('Connection', 'close') also flips
        # close_connection for us.)
        self.send_header("Connection", "close")
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to salvage

    def handle_health(self, path: str) -> bool:
        """Answer the health routes; returns False for other paths.

        ``/healthz`` stays the bare liveness probe (``ok``) existing
        scrapers and the CI smoke test curl; ``/healthz/live`` spells
        it explicitly; ``/healthz/ready`` reflects the
        :class:`HealthState` — 503 while warming up or draining.
        """
        if path in ("/healthz", "/healthz/live"):
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
            return True
        if path == "/healthz/ready":
            if self.health is not None and self.health.ready:
                self._reply(200, "text/plain; charset=utf-8", b"ready\n")
            else:
                self._reply(503, "text/plain; charset=utf-8", b"not ready\n")
            return True
        return False

    def log_message(self, format, *args) -> None:
        """Silence per-request stderr chatter; scrapes are frequent."""


class _MetricsHandler(BaseEndpointHandler):
    """Routes /metrics, /healthz[/live|/ready] and /snapshot; 404 otherwise."""

    # Set by MetricsServer before the server starts.
    registry: MetricsRegistry = _default_registry

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_openmetrics(registry=self.registry).encode()
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
        elif self.handle_health(path):
            pass
        elif path == "/snapshot":
            body = json.dumps(self.registry.snapshot(), default=str).encode()
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")


class MetricsServer:
    """Serves the registry over HTTP from a background daemon thread.

    Args:
        host: bind address; default loopback only.
        port: TCP port; 0 picks a free one (read it back from
            :attr:`port` after :meth:`start`).
        registry: metrics registry to expose; defaults to the
            process-wide one.

    Usable as a context manager; :meth:`stop` is idempotent.  The
    server is *ready* from :meth:`start` (it has no warmup) until
    :meth:`stop` begins draining.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._registry = registry or _default_registry
        self._server: GracefulHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.health = HealthState()

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves 0 once the server has started)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and start serving in a daemon thread; returns self."""
        if self._server is not None:
            return self
        handler = type(
            "_BoundMetricsHandler",
            (_MetricsHandler,),
            {"registry": self._registry, "health": self.health},
        )
        self._server = GracefulHTTPServer((self._host, self._port), handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        self.health.set_ready(True)
        return self

    def stop(self, drain_grace_s: float = 2.0) -> None:
        """Drain and shut down: readiness flips first, then the accept
        loop stops, in-flight scrapes get ``drain_grace_s`` to finish,
        and the listener closes."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        self.health.set_ready(False)
        if server is not None:
            server.shutdown()
            server.drain(drain_grace_s)
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
