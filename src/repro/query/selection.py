"""Row/column selections for aggregate queries.

A :class:`Selection` names a set of rows and a set of columns; the
query's cell set is their cross product (the paper's 'some rows and
columns of the data matrix', Section 5.2).  Selections are normalized
to sorted unique index arrays at construction and validate themselves
against a matrix shape at execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import QueryError


def _normalize(indices: Iterable[int] | slice | None, extent: int | None) -> np.ndarray | None:
    """Sorted unique int64 array, or None for 'all' when extent unknown."""
    if indices is None:
        if extent is None:
            return None
        return np.arange(extent, dtype=np.int64)
    if isinstance(indices, slice):
        if extent is None:
            raise QueryError("slice selections need a known extent")
        return np.arange(extent, dtype=np.int64)[indices]
    if isinstance(indices, range):
        # Bounds-check before materializing: a hostile 'rows 0:10**21'
        # (with ANY step — range(0, 10**18, 2) is just as unbounded as
        # the unit-step form) from the serving boundary must fail fast
        # as a QueryError, not allocate an astronomic list (or overflow
        # int64).  Pure int arithmetic throughout — len()/indexing a
        # humongous range would themselves overflow.
        start, stop, step = indices.start, indices.stop, indices.step
        if step > 0:
            size = max(0, (stop - start + step - 1) // step)
            lo, hi = start, start + (size - 1) * step
        else:
            size = max(0, (start - stop - step - 1) // -step)
            lo, hi = start + (size - 1) * step, start
        if size == 0:
            raise QueryError("selection must include at least one index")
        if extent is not None and (lo < 0 or hi >= extent):
            raise QueryError(f"selection [{lo}, {hi}] outside [0, {extent})")
        arr = np.arange(start, stop, step, dtype=np.int64)
        return arr if step > 0 else arr[::-1].copy()
    try:
        arr = np.unique(np.asarray(list(indices), dtype=np.int64))
    except (OverflowError, ValueError, TypeError) as exc:
        raise QueryError(
            f"selection indices must be machine-size integers: {exc}"
        ) from exc
    if arr.size == 0:
        raise QueryError("selection must include at least one index")
    return arr


@dataclass(frozen=True)
class Selection:
    """A rectangle of cells: selected rows x selected columns.

    ``rows`` / ``cols`` may be iterables of indices, slices, or None for
    'all rows' / 'all columns'.
    """

    rows: object = None
    cols: object = None

    def resolve(self, shape: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Concrete sorted index arrays for a matrix of ``shape``.

        Raises :class:`QueryError` for out-of-range indices.
        """
        num_rows, num_cols = shape
        rows = _normalize(self.rows, num_rows)
        cols = _normalize(self.cols, num_cols)
        # Slices (and zero-extent matrices) can normalize to nothing;
        # surface that as a QueryError, not an IndexError downstream.
        if rows.size == 0:
            raise QueryError("row selection is empty — it covers no cells")
        if cols.size == 0:
            raise QueryError("column selection is empty — it covers no cells")
        if rows[0] < 0 or rows[-1] >= num_rows:
            raise QueryError(
                f"row selection [{rows[0]}, {rows[-1]}] outside [0, {num_rows})"
            )
        if cols[0] < 0 or cols[-1] >= num_cols:
            raise QueryError(
                f"column selection [{cols[0]}, {cols[-1]}] outside [0, {num_cols})"
            )
        return rows, cols

    def cell_count(self, shape: tuple[int, int]) -> int:
        """Number of cells the selection covers on a matrix of ``shape``."""
        rows, cols = self.resolve(shape)
        return int(rows.size * cols.size)

    @staticmethod
    def random(
        shape: tuple[int, int],
        target_fraction: float,
        rng: np.random.Generator,
    ) -> "Selection":
        """A random selection covering about ``target_fraction`` of cells.

        Mirrors the paper's Fig. 9 workload: 'the number of rows and
        columns selected was tuned so that approximately 10% of the data
        cells would be included'.  Rows and columns each get about
        ``sqrt(target_fraction)`` of their extent so the product lands
        near the target.
        """
        if not 0.0 < target_fraction <= 1.0:
            raise QueryError(
                f"target_fraction must be in (0, 1], got {target_fraction}"
            )
        num_rows, num_cols = shape
        side = float(np.sqrt(target_fraction))
        pick_rows = max(1, int(round(side * num_rows)))
        pick_cols = max(1, int(round(side * num_cols)))
        rows = rng.choice(num_rows, size=min(pick_rows, num_rows), replace=False)
        cols = rng.choice(num_cols, size=min(pick_cols, num_cols), replace=False)
        return Selection(rows=rows.tolist(), cols=cols.tolist())
