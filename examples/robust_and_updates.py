#!/usr/bin/env python3
"""Extensions walkthrough: robust axes, batched updates, fast aggregates.

Covers the features beyond the paper's core evaluation:

1. **Robust SVD** (future-work item b): a whale customer tilts plain
   SVD's axes; winsorized axes fix the bulk and hand the whale to the
   delta table.
2. **Batched off-line updates** (the paper's update model): patch cells,
   append customers, rebuild in one scan.
3. **Factor-space aggregates**: the same answer as row streaming,
   computed straight from U, Lambda, V.

Run:  python examples/robust_and_updates.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import QueryEngine, AggregateQuery, Selection, rmspe
from repro.core import (
    BatchUpdater,
    RobustSVDCompressor,
    SVDCompressor,
    SVDDCompressor,
)
from repro.data import phone_matrix
from repro.storage import MatrixStore


def robust_demo() -> None:
    print("=== 1. robust axes vs the whale customer ===")
    data = phone_matrix(1000).copy()
    rng = np.random.default_rng(3)
    data[13] = rng.random(data.shape[1]) * data.max() * 50  # the whale
    bulk = np.ones(1000, dtype=bool)
    bulk[13] = False

    plain = SVDCompressor(k=2).fit(data)
    robust = RobustSVDCompressor(k=2, clip_percentile=99).fit(data)
    print(
        f"  bulk RMSPE at k=2: plain {rmspe(data[bulk], plain.reconstruct()[bulk]):.4f} "
        f"vs robust {rmspe(data[bulk], robust.reconstruct()[bulk]):.4f}"
    )
    print("  (the whale stops tilting the axes; SVDD deltas store it exactly)\n")


def updates_demo() -> None:
    print("=== 2. batched off-line updates ===")
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        store = MatrixStore.create(root / "v1.mat", phone_matrix(800))
        updater = BatchUpdater(store)
        updater.update_cell(5, 100, 999.0)  # a correction
        new_customer = np.abs(np.random.default_rng(9).random(366) * 20)
        new_index = updater.append_row(new_customer)
        new_store, model = updater.rebuild(
            root / "v2.mat", compressor=SVDDCompressor(budget_fraction=0.10)
        )
        print(
            f"  rebuilt in {store.pass_count} scan(s) of the old store; "
            f"new shape {new_store.shape}"
        )
        print(
            f"  corrected cell now reconstructs to "
            f"{model.reconstruct_cell(5, 100):.1f} (target 999.0)"
        )
        print(f"  appended customer lives at row {new_index}\n")
        new_store.close()
        store.close()


def fastpath_demo() -> None:
    print("=== 3. factor-space aggregates ===")
    data = phone_matrix(2000)
    model = SVDDCompressor(budget_fraction=0.10).fit(data)
    query = AggregateQuery("avg", Selection(rows=range(0, 1500), cols=range(50, 200)))

    fast = QueryEngine(model, use_fast_path=True)
    slow = QueryEngine(model, use_fast_path=False)
    t0 = time.perf_counter()
    fast_value = fast.aggregate(query).value
    t1 = time.perf_counter()
    slow_value = slow.aggregate(query).value
    t2 = time.perf_counter()
    print(f"  factor space : {fast_value:.6f} in {(t1 - t0) * 1e3:.2f} ms")
    print(f"  row streaming: {slow_value:.6f} in {(t2 - t1) * 1e3:.2f} ms")
    print(f"  speedup: {(t2 - t1) / max(t1 - t0, 1e-9):.0f}x, identical answers\n")


if __name__ == "__main__":
    robust_demo()
    updates_demo()
    fastpath_demo()
    print("done.")
