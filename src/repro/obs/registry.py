"""Process-wide metrics registry.

The paper argues in *counters* — disk accesses per reconstructed cell,
passes over the data, deltas retained — so the reproduction keeps a
single registry through which every layer's counters are reachable:

- **counters / gauges / histograms** created on demand by name
  (``registry.counter("delta.lookups").inc()``), histograms carrying
  nanosecond-precision timing observations from the span tracer;
- **registered sources** — the always-on per-component stat structs
  (:class:`~repro.storage.buffer_pool.PoolStats`,
  :class:`~repro.storage.pager.IOStats`, delta-index stat dicts) held
  by weak reference, so one :meth:`MetricsRegistry.snapshot` exports
  every live pool and pager instead of leaving them siloed inside
  their owners.

Instrumentation is **disabled by default** and must stay near-free when
off: every hot-path site guards on the plain attribute
``registry.enabled`` (one load + branch, no allocation), and the
component stat structs it registers are the same cheap integer fields
the storage layer has always maintained.

All metric mutations are **thread-safe**: counters and histograms take
a per-metric lock (an uncontended CPython lock is tens of nanoseconds),
gauges expose an atomic ``add`` for in-flight accounting, and
``snapshot`` copies the metric maps under the registry lock so
concurrent metric creation cannot corrupt an export.  This is what
keeps the pool/pager/executor counters honest when the
:class:`~repro.query.executor.QueryExecutor` runs queries on many
threads.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from typing import Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
]


class Counter:
    """A monotonically increasing integer metric.

    ``inc`` is thread-safe: Python's ``+=`` on an attribute is a
    read-modify-write that can interleave between threads, so the
    increment happens under a per-counter lock.  Reading ``value`` needs
    no lock (it is a single attribute load of an int).
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1); safe to call from any thread."""
        with self._lock:
            self.value += int(amount)


class Gauge:
    """A point-in-time numeric metric (last write wins).

    ``set`` is a single atomic attribute store and needs no lock;
    ``add`` (used for in-flight style gauges such as the executor's
    ``executor.concurrency``) is a read-modify-write and takes one.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)

    def add(self, delta: float) -> float:
        """Shift the gauge by ``delta`` atomically; returns the new value."""
        with self._lock:
            self.value += float(delta)
            return self.value


#: Log-scale bucket layout shared by every histogram: bucket ``i``
#: covers values in ``(2**(i/4 - 1/4), 2**(i/4)]`` — a ~19% growth
#: factor, fine enough that a p99 read off a bucket bound is within
#: one fifth of the true value.  176 buckets span 1 ns .. ~2**44 ns
#: (about five hours), the full range a span duration can plausibly
#: take; values outside clamp to the end buckets.
_BUCKET_COUNT = 176
_BUCKETS_PER_OCTAVE = 4
_LOG2_SCALE = 1.0 / math.log(2.0) * _BUCKETS_PER_OCTAVE
#: Upper bound of each bucket (inclusive), precomputed once.
_BUCKET_BOUNDS = tuple(
    2.0 ** ((index + 1) / _BUCKETS_PER_OCTAVE) for index in range(_BUCKET_COUNT)
)


def _bucket_index(value: float) -> int:
    """The log-scale bucket a positive value falls into (clamped)."""
    if value <= 1.0:
        return 0
    index = int(math.log(value) * _LOG2_SCALE)
    # Float log can land exactly on a bound's neighbour; nudge so the
    # bucket's upper bound is truly >= value.
    if index > 0 and value <= _BUCKET_BOUNDS[index - 1]:
        index -= 1
    if index >= _BUCKET_COUNT:
        return _BUCKET_COUNT - 1
    return index


class Histogram:
    """Streaming distribution of observations with latency quantiles.

    Keeps the cheap summary fields (count/total/min/max) **plus** a
    fixed array of log-scale buckets (see ``_BUCKET_BOUNDS``), so a
    long-lived serving process can answer "what is p99 query latency"
    without retaining observations.  Memory is a constant ~1.4 KB per
    histogram regardless of observation count.

    ``observe`` updates fields that must stay mutually consistent, so
    it runs under a per-histogram lock.  :meth:`merge` folds another
    histogram in (used to combine per-worker distributions into a
    fleet-wide one) and is lock-safe against concurrent observers on
    both sides: it snapshots the source under its lock, then applies
    under the destination's.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.buckets = [0] * _BUCKET_COUNT
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation; safe to call from any thread."""
        value = float(value)
        index = _bucket_index(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            self.buckets[index] += 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s distribution into this histogram.

        Safe against concurrent ``observe`` on either side; after the
        merge, this histogram's quantiles describe the union of both
        observation streams exactly (bucket counts are additive).
        Returns ``self`` for chaining.
        """
        with other._lock:
            count = other.count
            total = other.total
            minimum = other.minimum
            maximum = other.maximum
            buckets = list(other.buckets)
        with self._lock:
            self.count += count
            self.total += total
            if minimum < self.minimum:
                self.minimum = minimum
            if maximum > self.maximum:
                self.maximum = maximum
            for index, extra in enumerate(buckets):
                if extra:
                    self.buckets[index] += extra
        return self

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """The value at quantile ``q`` in [0, 1] (None when empty).

        Resolved from the log-scale buckets: the answer is the upper
        bound of the bucket containing the q-th observation, clamped to
        the exact observed [min, max] — so resolution is ~19% in the
        middle and exact at the extremes.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            count = self.count
            if count == 0:
                return None
            target = q * count
            cumulative = 0
            bound = self.maximum
            for index, bucket in enumerate(self.buckets):
                cumulative += bucket
                if cumulative >= target:
                    bound = _BUCKET_BOUNDS[index]
                    break
            return min(max(bound, self.minimum), self.maximum)

    def percentiles(self) -> dict:
        """The standard latency quantiles: p50/p95/p99 (None when empty)."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        """Summary plus p50/p95/p99, JSON-ready (bounds None when empty)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            **self.percentiles(),
        }


class _Timer:
    """Context manager observing elapsed nanoseconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter_ns() - self._start)


def _source_dict(stats) -> dict:
    """Export one registered stat source as a plain dict."""
    if isinstance(stats, dict):
        return dict(stats)
    if hasattr(stats, "to_dict"):
        return stats.to_dict()
    raise TypeError(f"unsupported stat source type {type(stats).__name__}")


class MetricsRegistry:
    """Named metrics plus weakly-held component stat sources.

    Args:
        enabled: initial state of the instrumentation flag.  The
            process-wide :data:`registry` starts disabled; the CLI's
            ``--profile``/``stats`` paths and the benchmarks enable it
            explicitly.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # kind -> list of (name, weakref-to-stats).  Dead refs are
        # pruned on snapshot; names repeat when many instances share
        # one (e.g. every test's "u" pool) and are suffixed on export.
        self._sources: dict[str, list[tuple[str, weakref.ref]]] = {}

    # -- lifecycle -------------------------------------------------------

    def enable(self) -> None:
        """Turn instrumentation on."""
        self.enabled = True

    def disable(self) -> None:
        """Turn instrumentation off (guards short-circuit again)."""
        self.enabled = False

    def reset(self) -> None:
        """Drop all named metrics (registered sources are kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- named metrics ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` block into ``histogram(name)`` (nanoseconds)."""
        return _Timer(self.histogram(name))

    # -- component stat sources ------------------------------------------

    def register_source(self, kind: str, name: str, stats) -> None:
        """Weakly register a component's stat struct for export.

        ``stats`` is a dataclass with ``to_dict`` (``PoolStats``,
        ``IOStats``) or a plain dict owned by the component.  The
        registry never keeps it alive: when the owning pool or pager is
        garbage collected the entry silently disappears from snapshots.
        """
        entry: tuple[str, Callable[[], object | None]]
        try:
            entry = (name, weakref.ref(stats))
        except TypeError:
            # dicts are not weakref-able; they are tiny, hold directly.
            entry = (name, lambda stats=stats: stats)
        with self._lock:
            self._sources.setdefault(kind, []).append(entry)

    def _live_sources(self, kind: str) -> Iterator[tuple[str, object]]:
        entries = self._sources.get(kind, [])
        alive = []
        for name, ref in entries:
            stats = ref()
            if stats is None:
                continue
            alive.append((name, ref))
            yield name, stats
        if len(alive) != len(entries):
            with self._lock:
                self._sources[kind] = alive

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything the registry knows, as one JSON-ready dict.

        The metric maps are copied under the registry lock so a thread
        creating a new counter mid-snapshot cannot break the iteration.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {
            "enabled": self.enabled,
            "counters": {
                name: counter.value for name, counter in sorted(counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(gauges.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(histograms.items())
            },
        }
        for kind in sorted(self._sources):
            exported: dict[str, dict] = {}
            for name, stats in self._live_sources(kind):
                key = name
                suffix = 2
                while key in exported:
                    key = f"{name}#{suffix}"
                    suffix += 1
                exported[key] = _source_dict(stats)
            out[kind] = exported
        return out


#: The process-wide default registry.  Disabled until a caller (CLI
#: ``--profile``/``stats``, a benchmark, a test) enables it.
registry = MetricsRegistry()
