"""Query throughput: cell queries per second, compressed vs raw.

The paper's pitch is that compression need not cost query capability.
This bench measures single-cell query throughput on the persistent
compressed store against the raw store, across buffer-pool sizes and
eviction policies, on a skewed (Zipf-ish) row-access pattern — the
realistic case where some customers are queried far more than others.

Expected shape: the compressed store's throughput is within a small
factor of the raw store's (both are one page access per cold row; the
compressed pages are smaller); larger pools help both; CLOCK tracks
LRU's hit rate on the skewed workload.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import CompressedMatrix, SVDDCompressor
from repro.storage import BufferPool, MatrixStore


def _workload(shape: tuple[int, int], count: int) -> list[tuple[int, int]]:
    rng = np.random.default_rng(91)
    # Zipf-ish row skew: a few hot customers, a long cold tail.
    rows = rng.zipf(1.3, size=count) % shape[0]
    cols = rng.integers(shape[1], size=count)
    return [(int(r), int(c)) for r, c in zip(rows, cols)]


def test_query_throughput(tmp_path_factory, phone2000, benchmark):
    root = tmp_path_factory.mktemp("throughput")
    model = SVDDCompressor(budget_fraction=0.10).fit(phone2000)
    CompressedMatrix.save(model, root / "model").close()
    MatrixStore.create(root / "raw.mat", phone2000).close()
    queries = _workload(phone2000.shape, 4000)

    rows = []
    throughput = {}
    for label, pool_capacity in (("64-page pool", 64), ("512-page pool", 512)):
        compressed = CompressedMatrix.open(root / "model", pool_capacity=pool_capacity)
        start = time.perf_counter()
        for row, col in queries:
            compressed.cell(row, col)
        compressed_qps = len(queries) / (time.perf_counter() - start)
        hit_rate = compressed.u_pool_stats.hit_rate
        compressed.close()

        raw = MatrixStore.open(root / "raw.mat", pool_capacity=pool_capacity)
        start = time.perf_counter()
        for row, col in queries:
            raw.cell(row, col)
        raw_qps = len(queries) / (time.perf_counter() - start)
        raw.close()

        throughput[label] = (compressed_qps, raw_qps)
        rows.append(
            [
                label,
                f"{compressed_qps:,.0f}",
                f"{hit_rate:.1%}",
                f"{raw_qps:,.0f}",
            ]
        )
    lines = format_table(
        "Cell-query throughput on a Zipf row workload (4000 queries, phone2000)",
        ["configuration", "compressed q/s", "U-pool hit rate", "raw q/s"],
        rows,
    )

    # Policy comparison at equal capacity on the same workload.
    policy_rows = []
    for policy in ("lru", "clock"):
        raw = MatrixStore.open(root / "raw.mat")
        pool = BufferPool(raw._pager, capacity=32, policy=policy)
        raw._pool = pool
        for row, col in queries:
            raw.cell(row, col)
        policy_rows.append([policy, f"{pool.stats.hit_rate:.1%}"])
        raw.close()
    lines.append("")
    lines.extend(
        format_table(
            "Eviction policy hit rates (32-page pool, same workload)",
            ["policy", "hit rate"],
            policy_rows,
        )
    )
    emit("query_throughput", lines)

    # The compressed store keeps up with the raw store.  Wall-clock
    # ratios are machine/load sensitive, so the hard assertion is loose;
    # the structural claim (page misses comparable at a tenth of the
    # space) is what the storage_access bench pins down exactly.
    for compressed_qps, raw_qps in throughput.values():
        assert compressed_qps > raw_qps / 12

    compressed = CompressedMatrix.open(root / "model")
    benchmark(lambda: compressed.cell(1000, 183))
    compressed.close()
