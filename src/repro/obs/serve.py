"""Embedded metrics endpoint over the process registry.

A stdlib-only HTTP server (``http.server.ThreadingHTTPServer`` in a
daemon thread) exposing the observability surface of a serving
process:

- ``GET /metrics`` — OpenMetrics exposition text from
  :func:`repro.obs.export.render_openmetrics`, scrapeable by
  Prometheus;
- ``GET /healthz`` — liveness probe, always ``ok``;
- ``GET /snapshot`` — the raw JSON registry snapshot (what
  ``repro top`` polls: it needs counter values to difference into
  rates, which the rendered text would make it re-parse).

The server holds no query-path locks: every request just calls
``registry.snapshot()``, which reads each metric under its own short
lock.  ``repro serve-metrics`` wraps this in a CLI; embedders use it
directly::

    with MetricsServer(port=9464) as server:
        print(server.url)        # http://127.0.0.1:9464
        ...                      # serve queries; scrape any time
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import render_openmetrics
from repro.obs.registry import MetricsRegistry, registry as _default_registry

__all__ = ["MetricsServer", "OPENMETRICS_CONTENT_TYPE"]

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class _MetricsHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz and /snapshot; 404 otherwise."""

    # Set by MetricsServer before the server starts.
    registry: MetricsRegistry = _default_registry

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_openmetrics(registry=self.registry).encode()
            self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        elif path == "/snapshot":
            body = json.dumps(self.registry.snapshot(), default=str).encode()
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args) -> None:
        """Silence per-request stderr chatter; scrapes are frequent."""


class MetricsServer:
    """Serves the registry over HTTP from a background daemon thread.

    Args:
        host: bind address; default loopback only.
        port: TCP port; 0 picks a free one (read it back from
            :attr:`port` after :meth:`start`).
        registry: metrics registry to expose; defaults to the
            process-wide one.

    Usable as a context manager; :meth:`stop` is idempotent.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._host = host
        self._port = int(port)
        self._registry = registry or _default_registry
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._host

    @property
    def port(self) -> int:
        """The bound port (resolves 0 once the server has started)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        """Bind and start serving in a daemon thread; returns self."""
        if self._server is not None:
            return self
        handler = type(
            "_BoundMetricsHandler",
            (_MetricsHandler,),
            {"registry": self._registry},
        )
        self._server = ThreadingHTTPServer((self._host, self._port), handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
