"""Calendar-aware column selections for daily time sequences.

The paper's queries are phrased in calendar terms — 'the week ending
July 12', 'weekday sales to business customers'.  When columns are
consecutive days, these helpers build the corresponding
:class:`~repro.query.selection.Selection` column sets:

- :func:`weekday_columns` / :func:`weekend_columns` — day-of-week
  filters (column 0's weekday is configurable);
- :func:`week_columns` — the paper's 'week ending day d';
- :func:`month_columns` — calendar months for a given start date
  (handles leap years, the paper's M=366 case).
"""

from __future__ import annotations

import datetime

from repro.exceptions import QueryError

#: Day-of-week codes, Monday=0 (Python's convention).
MONDAY, SATURDAY, SUNDAY = 0, 5, 6


def weekday_columns(
    num_cols: int, first_day_of_week: int = MONDAY
) -> list[int]:
    """Columns falling on Monday-Friday.

    Args:
        num_cols: number of day columns.
        first_day_of_week: weekday (0=Monday) of column 0.
    """
    if not 0 <= first_day_of_week <= 6:
        raise QueryError(f"first_day_of_week must be 0..6, got {first_day_of_week}")
    return [
        col for col in range(num_cols) if (first_day_of_week + col) % 7 < 5
    ]


def weekend_columns(num_cols: int, first_day_of_week: int = MONDAY) -> list[int]:
    """Columns falling on Saturday/Sunday."""
    if not 0 <= first_day_of_week <= 6:
        raise QueryError(f"first_day_of_week must be 0..6, got {first_day_of_week}")
    return [
        col for col in range(num_cols) if (first_day_of_week + col) % 7 >= 5
    ]


def week_columns(ending_col: int, num_cols: int) -> list[int]:
    """The seven columns of 'the week ending <day>' (paper Section 1).

    Clipped at the start of the matrix for weeks that begin before
    column 0.
    """
    if not 0 <= ending_col < num_cols:
        raise QueryError(
            f"ending_col {ending_col} out of range [0, {num_cols})"
        )
    return list(range(max(0, ending_col - 6), ending_col + 1))


def month_columns(
    year: int, month: int, start_date: datetime.date, num_cols: int
) -> list[int]:
    """Columns of one calendar month, given column 0's date.

    Raises :class:`QueryError` when the month lies entirely outside the
    matrix.
    """
    if not 1 <= month <= 12:
        raise QueryError(f"month must be 1..12, got {month}")
    month_start = datetime.date(year, month, 1)
    next_month = (
        datetime.date(year + 1, 1, 1)
        if month == 12
        else datetime.date(year, month + 1, 1)
    )
    first = (month_start - start_date).days
    last = (next_month - start_date).days  # exclusive
    lo, hi = max(first, 0), min(last, num_cols)
    if lo >= hi:
        raise QueryError(
            f"{year}-{month:02d} lies outside the stored range "
            f"({start_date} + {num_cols} days)"
        )
    return list(range(lo, hi))
