"""Factor-space aggregate evaluation.

A consequence of the SVD representation the paper does not spell out
but a production system would exploit: aggregates over a selection
``R x S`` of a rank-k model never need the reconstructed cells.

    sum over (i in R, j in S) of x_hat[i, j]
        = sum_i (u_i * lambda) . (sum_{j in S} v_j)

which is O(|R| * k) work instead of O(|R| * |S| * k).  Sums of squares
(for stddev) reduce similarly through the k x k Gram of the selected
``V`` rows:

    sum_j x_hat[i, j]^2 = (u_i * lambda) G (u_i * lambda)^t,
    G = sum_{j in S} v_j v_j^t

Delta corrections fold in through the sorted
:class:`~repro.core.delta_index.DeltaIndex`: the deltas inside the
selection are located with vectorized ``searchsorted`` membership tests
(O(d log n) for d in-selection deltas), each shifting the sum by ``d``
and the sum of squares by ``2 * x_hat[i, j] * d + d^2`` — no Python scan
over the stored outlier set.

For the persistent :class:`~repro.core.store.CompressedMatrix` the
selected ``U`` rows arrive as one batched, page-coalesced gather
(:meth:`~repro.storage.matrix_store.MatrixStore.read_rows`); those
fetches are real disk work, so :func:`factor_aggregate` reports them
alongside the value and the engine surfaces them in
``QueryResult.rows_fetched``.

:func:`factor_aggregate` returns None for aggregates that genuinely
need per-cell values (min/max), letting the engine fall back to row
streaming.  The engine asserts both paths agree in its tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.delta_index import DeltaIndex
from repro.core.model import SVDDModel, SVDModel
from repro.core.store import CompressedMatrix
from repro.obs.tracing import span as _span

#: Aggregates the factor path can answer without per-cell values.
FACTOR_FUNCTIONS = ("sum", "avg", "count", "stddev")


def _unwrap(backend) -> SVDModel | None:
    """The underlying SVDModel of a supported backend, else None."""
    if isinstance(backend, SVDModel):
        return backend
    if isinstance(backend, SVDDModel):
        return backend.svd
    model = getattr(backend, "model", None)  # the methods adapter
    if isinstance(model, SVDModel):
        return model
    if isinstance(model, SVDDModel):
        return model.svd
    return None


def _delta_index_of(backend) -> DeltaIndex | None:
    """The backend's outlier index, or None when it stores no deltas."""
    if isinstance(backend, CompressedMatrix):
        return backend.delta_index
    if isinstance(backend, SVDDModel):
        return backend.delta_index
    inner = getattr(backend, "model", None)
    if isinstance(inner, SVDDModel):
        return inner.delta_index
    return None


def has_factor_form(backend) -> bool:
    """True when the backend can serve factor-space aggregates.

    A pure predicate — unlike gathering, it performs no disk access, so
    ``QueryEngine.explain`` can plan without executing.
    """
    return isinstance(backend, CompressedMatrix) or _unwrap(backend) is not None


def factor_fetch_count(backend, num_rows: int) -> int:
    """U-row fetches the factor path performs for a ``num_rows`` selection.

    Disk-resident backends pay one page-coalesced row fetch per selected
    row; in-memory models pay none.
    """
    return int(num_rows) if isinstance(backend, CompressedMatrix) else 0


def _gather_factors(backend, row_idx: np.ndarray):
    """Return ``(scaled_u, eigenvalues, v, num_cols, delta_index)`` for
    the selected rows, or None when the backend has no factor form.

    For the persistent :class:`CompressedMatrix`, the selected ``U``
    rows arrive as one :meth:`MatrixStore.read_rows` batch — page reads
    coalesced through the buffer pool — while the pinned
    ``V``/``Lambda`` come from memory.
    """
    if isinstance(backend, CompressedMatrix):
        eigenvalues = backend._eigenvalues
        u_sel = backend._u_store.read_rows(row_idx)[:, : backend.cutoff]
        scaled_u = u_sel * eigenvalues
        return scaled_u, eigenvalues, backend._v, backend.shape[1], backend.delta_index
    svd = _unwrap(backend)
    if svd is None:
        return None
    scaled_u = svd.u[row_idx] * svd.eigenvalues
    return scaled_u, svd.eigenvalues, svd.v, svd.num_cols, _delta_index_of(backend)


def factor_aggregate(
    backend,
    row_idx: np.ndarray,
    col_idx: np.ndarray,
    function: str,
    include_deltas: bool = True,
) -> tuple[float, int] | None:
    """Evaluate sum/avg/count/stddev in factor space.

    Returns ``(value, rows_fetched)`` — ``rows_fetched`` counts the real
    U-row fetches performed (non-zero only for disk-resident backends) —
    or None if the backend or function does not support the fast path.

    ``include_deltas=False`` skips the delta fold entirely and answers
    from the SVD factors alone — the serving tier's brownout mode, where
    the answer is the paper's rank-k approximation with its stored
    RMSPE estimate instead of the delta-corrected value.
    """
    if function not in FACTOR_FUNCTIONS:
        return None
    if not has_factor_form(backend):
        return None

    count = int(row_idx.size) * int(col_idx.size)
    if function == "count":
        # Pure arithmetic on the selection geometry: no factor gather,
        # hence no row fetches.
        return float(count), 0

    with _span("query.factor.gather", rows=int(row_idx.size)):
        gathered = _gather_factors(backend, row_idx)
    if gathered is None:
        return None
    scaled_u, _eigenvalues, v, _num_cols, index = gathered
    rows_fetched = factor_fetch_count(backend, row_idx.size)

    need_squares = function == "stddev"
    with _span("query.factor.gemm"):
        v_sel = v[col_idx]  # (m_sel, k)
        col_sum = v_sel.sum(axis=0)  # (k,)
        row_sums = scaled_u @ col_sum  # (n,)
        total = float(row_sums.sum())

        total_sq = 0.0
        if need_squares:
            gram = v_sel.T @ v_sel  # (k, k)
            total_sq = float(np.einsum("nk,kl,nl->", scaled_u, gram, scaled_u))

    if include_deltas and index is not None and len(index) > 0:
        with _span("query.factor.delta", stored=len(index)):
            row_pos, _col_pos, _rows, delta_cols, values = index.select(
                row_idx, col_idx
            )
            if values.size:
                total += float(values.sum())
                if need_squares:
                    base = np.einsum("ik,ik->i", scaled_u[row_pos], v[delta_cols])
                    total_sq += float((2.0 * base * values + values * values).sum())

    if function == "sum":
        return total, rows_fetched
    if function == "avg":
        return total / count, rows_fetched
    # stddev
    mean = total / count
    variance = max(total_sq / count - mean * mean, 0.0)
    return float(np.sqrt(variance)), rows_fetched
