"""Tests for the named dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import dataset_names, load_dataset, toy_matrix
from repro.data.registry import clear_cache
from repro.exceptions import DatasetError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestNames:
    def test_toy(self):
        dataset = load_dataset("toy")
        assert dataset.shape == (7, 5)
        assert np.array_equal(dataset.matrix, toy_matrix())

    def test_stocks(self):
        dataset = load_dataset("stocks")
        assert dataset.shape == (381, 128)

    def test_phone_numeric(self):
        assert load_dataset("phone100").shape == (100, 366)

    def test_phone_k_suffix(self):
        dataset = load_dataset("phone1k")
        assert dataset.shape == (1000, 366)
        assert dataset.name == "phone1000"

    def test_case_insensitive(self):
        assert load_dataset("Phone100").shape == (100, 366)

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("enron")

    def test_malformed_phone_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("phone")

    def test_names_listing_loads(self):
        for name in dataset_names():
            if "100K" in name or "5000" in name:
                continue  # too slow for a unit test
            assert load_dataset(name).matrix.size > 0


class TestCaching:
    def test_same_object_returned(self):
        a = load_dataset("phone50")
        b = load_dataset("phone50")
        assert a is b

    def test_clear_cache_regenerates(self):
        a = load_dataset("phone50")
        clear_cache()
        b = load_dataset("phone50")
        assert a is not b
        assert np.array_equal(a.matrix, b.matrix)

    def test_phone_subsets_are_prefixes(self):
        small = load_dataset("phone40").matrix
        large = load_dataset("phone80").matrix
        assert np.array_equal(small, large[:40])
