"""Bounded top-gamma priority queue.

Pass 2 of the SVDD construction (paper Figure 5) keeps, for each
candidate cutoff ``k``, the ``gamma_k`` cells with the largest
reconstruction error seen so far.  That is a classic bounded min-heap:
the root holds the *smallest* of the retained errors, so a new cell
either displaces the root (if its error is larger) or is discarded in
O(1).

The heap is implemented from scratch on a Python list to keep the
substrate self-contained and to allow the payload-carrying
:class:`HeapItem` ordering semantics we need (ties broken by insertion
order so results are deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.exceptions import ConfigurationError


@dataclass(frozen=True, order=True)
class HeapItem:
    """A prioritized payload: ordered by ``key``, then insertion ``serial``."""

    key: float
    serial: int
    payload: Any = field(compare=False, default=None)


class BoundedTopHeap:
    """Fixed-capacity container retaining the items with the largest keys.

    ``push`` is O(log capacity); when full, an incoming item only enters
    if its key exceeds the current minimum retained key (ties resolved
    by earliest insertion winning, so scans over a matrix give
    row-major-deterministic outlier sets).

    Args:
        capacity: maximum number of items retained. Zero is allowed and
            yields an always-empty heap (the ``gamma_k = 0`` case where
            all budget went to principal components).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._items: list[HeapItem] = []
        self._serial = 0

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[HeapItem]:
        """Iterate retained items in unspecified (heap) order."""
        return iter(self._items)

    def min_key(self) -> float:
        """Smallest retained key; ``-inf`` when empty (everything qualifies)."""
        if not self._items:
            return float("-inf")
        return self._items[0].key

    def push(self, key: float, payload: Any = None) -> bool:
        """Offer an item; returns True if it was retained.

        An item with key equal to the current minimum does not displace
        it (first-seen wins), which keeps outlier selection stable under
        re-scans.
        """
        if self._capacity == 0:
            return False
        item = HeapItem(key=float(key), serial=self._serial, payload=payload)
        self._serial += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            self._sift_up(len(self._items) - 1)
            return True
        if item.key <= self._items[0].key:
            return False
        self._items[0] = item
        self._sift_down(0)
        return True

    def items_descending(self) -> list[HeapItem]:
        """All retained items, largest key first (stable by insertion)."""
        return sorted(self._items, key=lambda it: (-it.key, it.serial))

    def shrink_to(self, capacity: int) -> list[HeapItem]:
        """Reduce capacity, evicting the smallest items; returns evicted items.

        Used when the final ``k_opt`` choice leaves a smaller delta
        budget than the pass-2 working estimate.
        """
        if capacity < 0:
            raise ConfigurationError(f"capacity must be >= 0, got {capacity}")
        evicted: list[HeapItem] = []
        ordered = self.items_descending()
        keep, drop = ordered[:capacity], ordered[capacity:]
        evicted.extend(drop)
        self._capacity = capacity
        self._items = []
        for item in keep:
            self._items.append(item)
            self._sift_up(len(self._items) - 1)
        return evicted

    # -- heap mechanics ------------------------------------------------

    def _sift_up(self, idx: int) -> None:
        items = self._items
        while idx > 0:
            parent = (idx - 1) >> 1
            if items[idx] < items[parent]:
                items[idx], items[parent] = items[parent], items[idx]
                idx = parent
            else:
                return

    def _sift_down(self, idx: int) -> None:
        items = self._items
        size = len(items)
        while True:
            left = 2 * idx + 1
            right = left + 1
            smallest = idx
            if left < size and items[left] < items[smallest]:
                smallest = left
            if right < size and items[right] < items[smallest]:
                smallest = right
            if smallest == idx:
                return
            items[idx], items[smallest] = items[smallest], items[idx]
            idx = smallest
