"""The introduction's economics, as a table.

'When the dataset is very large ... if the data is on tape, such access
is next to impossible.  When the data is all on disk, the cost of disk
storage ... is typically a major concern.'  This bench fits a real SVDD
model, then runs the first-order cost model over the physical designs
the paper discusses — uncompressed on tape/disk, gzip on disk, SVDD on
disk and in memory — for the paper's phone100K scale.

Expected shape: tape and gzip are minutes-per-query (no random access);
raw-on-disk and SVDD-on-disk are both ~1 access (milliseconds), with
SVDD at a tenth the footprint; the footprint reduction is what lets the
dataset move up a tier entirely.
"""

from __future__ import annotations

from benchmarks.conftest import emit, format_table
from repro.core import SVDDCompressor
from repro.costmodel import (
    DISK,
    MEMORY,
    TAPE,
    gzip_design,
    raw_design,
    svdd_design,
)

N, M = 100_000, 366  # the paper's phone100K scale


def test_cost_model(phone2000, benchmark):
    # Fit at bench scale to get realistic k/deltas, then project to 100K
    # (Fig. 10 showed the curves are homogeneous in N).
    model = SVDDCompressor(budget_fraction=0.10).fit(phone2000)
    deltas_at_scale = int(model.num_deltas * (N / phone2000.shape[0]))

    designs = [
        raw_design(N, M, TAPE),
        raw_design(N, M, DISK),
        gzip_design(N, M, DISK, ratio=0.25),
        svdd_design(N, M, model.cutoff, deltas_at_scale, DISK),
        svdd_design(N, M, model.cutoff, deltas_at_scale, MEMORY),
    ]
    rows = []
    latency = {}
    for design in designs:
        cell_ms = design.cell_query_ms()
        agg_ms = design.aggregate_query_ms(rows_touched=10_000)
        latency[design.name] = cell_ms
        rows.append(
            [
                design.name,
                f"{design.total_bytes / 1e6:,.0f} MB",
                f"{cell_ms:,.1f}",
                f"{agg_ms / 1e3:,.1f}",
            ]
        )
    lines = format_table(
        f"First-order query latency by physical design ({N:,} x {M} matrix, "
        f"k={model.cutoff})",
        ["design", "footprint", "cell query ms", "aggregate s (10k rows)"],
        rows,
    )
    lines.append(
        "tape/gzip pay a full stream per ad hoc query; SVDD keeps raw "
        "disk's ~1-access latency at ~10x less space — or fits in memory."
    )
    emit("cost_model", lines)

    assert latency["uncompressed on tape"] > 60_000  # 'next to impossible'
    assert latency["gzip on disk"] > 100 * latency["uncompressed on disk"]
    assert latency["SVDD on disk"] < 2 * latency["uncompressed on disk"]
    assert latency["SVDD on memory"] < latency["SVDD on disk"] / 100

    benchmark(lambda: svdd_design(N, M, model.cutoff, deltas_at_scale, DISK).cell_query_ms())
