"""Construction cost: the 3-pass algorithm (Fig. 5) vs the naive loop (Fig. 4).

The paper's algorithmic contribution inside SVDD is factoring the per-k
work into shared passes: 'We can factor out several passes and do the
whole operation in three passes rather than 3 * k_max.'  This bench runs
both constructions on the same on-disk store and reports measured pass
counts and wall time, asserting they produce identical models.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import NaiveSVDDCompressor, SVDDCompressor
from repro.data import phone_matrix
from repro.storage import MatrixStore

BUDGET = 0.10
ROWS = 800  # naive is ~3*k_max passes; keep it tractable


def test_construction_cost(tmp_path_factory, benchmark):
    root = tmp_path_factory.mktemp("construction")
    data = phone_matrix(ROWS)

    fast_store = MatrixStore.create(root / "fast.mat", data)
    start = time.perf_counter()
    fast_model = SVDDCompressor(budget_fraction=BUDGET).fit(fast_store)
    fast_time = time.perf_counter() - start
    fast_passes = fast_store.pass_count

    naive_store = MatrixStore.create(root / "naive.mat", data)
    start = time.perf_counter()
    naive_model = NaiveSVDDCompressor(budget_fraction=BUDGET).fit(naive_store)
    naive_time = time.perf_counter() - start
    naive_passes = naive_store.pass_count

    rows = [
        ["Fig. 5 (3-pass)", str(fast_passes), f"{fast_time:.2f}"],
        ["Fig. 4 (naive)", str(naive_passes), f"{naive_time:.2f}"],
    ]
    lines = format_table(
        f"SVDD construction cost on phone{ROWS} at s={BUDGET:.0%} "
        f"(k_max={fast_model.k_max})",
        ["algorithm", "passes over X", "seconds"],
        rows,
    )
    lines.append(
        f"pass ratio: {naive_passes / fast_passes:.1f}x "
        f"(paper predicts ~k_max = {fast_model.k_max}x)"
    )
    lines.append("models identical: same k_opt, same outlier cells")
    emit("construction_cost", lines)

    # Identical results...
    assert fast_model.cutoff == naive_model.cutoff
    assert {k for k, _ in fast_model.deltas.items()} == {
        k for k, _ in naive_model.deltas.items()
    }
    assert np.allclose(
        fast_model.candidate_errors, naive_model.candidate_errors, rtol=1e-6
    )
    # ...at a fraction of the passes.
    assert fast_passes == 3
    assert naive_passes >= 2 * fast_model.k_max

    fast_store.close()
    naive_store.close()

    benchmark(lambda: SVDDCompressor(budget_fraction=BUDGET).fit(data))
