#!/usr/bin/env python3
"""Heterogeneous vectors: the paper's Section 2.3 argument, live.

'The SVD can be applied not only to time sequences, but to any
arbitrary, even heterogeneous, M-dimensional vectors. ... In such a
setting, the spectral methods do not apply.'

This example compresses synthetic patient records (age, weight, blood
pressure, cholesterol panel, ...) with SVDD and demonstrates why a
frequency transform is the wrong tool: shuffling the column order —
meaningless for a record, fatal for a 'signal' — leaves SVD's error
untouched and moves DCT's.

Run:  python examples/patient_records.py
"""

from __future__ import annotations

import numpy as np

from repro import SVDDCompressor, rmspe
from repro.data import patient_field_names, patients_matrix
from repro.methods import DCTMethod, SVDMethod


def main() -> None:
    records = patients_matrix(2000)
    names = patient_field_names()
    print(f"dataset: {records.shape[0]} patients x {records.shape[1]} fields")
    print(f"fields: {', '.join(names[:6])}, ...\n")

    budget = 0.30
    model = SVDDCompressor(budget_fraction=budget).fit(records)
    print(
        f"SVDD at {budget:.0%} space: k={model.cutoff}, "
        f"{model.num_deltas} deltas, RMSPE {rmspe(records, model.reconstruct()):.4f}"
    )
    patient = 1234
    recon = model.reconstruct_row(patient)
    print(f"\npatient {patient} reconstruction (first 6 fields):")
    for field_idx in range(6):
        print(
            f"  {names[field_idx]:18s} actual {records[patient, field_idx]:8.2f}  "
            f"approx {recon[field_idx]:8.2f}"
        )

    print("\n=== column order should not matter for records ===")
    rng = np.random.default_rng(7)
    permutation = rng.permutation(records.shape[1])
    shuffled = records[:, permutation]

    svd_orig = rmspe(records, SVDMethod().fit(records, budget).reconstruct())
    svd_perm = rmspe(shuffled, SVDMethod().fit(shuffled, budget).reconstruct())
    dct_orig = rmspe(records, DCTMethod().fit(records, budget).reconstruct())
    dct_perm = rmspe(shuffled, DCTMethod().fit(shuffled, budget).reconstruct())
    print(f"  SVD : original {svd_orig:.5f}  shuffled {svd_perm:.5f}  (identical)")
    print(f"  DCT : original {dct_orig:.5f}  shuffled {dct_perm:.5f}  (order-dependent)")
    print(
        "\nSVD sees rows as points in R^M — column order is irrelevant.  A\n"
        "frequency transform assumes neighboring columns are related, which\n"
        "is an accident of field ordering here.  (Paper, Section 2.3.)"
    )
    print("\ndone.")


if __name__ == "__main__":
    main()
