"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import phone_matrix, stocks_matrix, toy_matrix


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic generator for ad hoc random inputs."""
    return np.random.default_rng(20260704)


@pytest.fixture(scope="session")
def toy() -> np.ndarray:
    """The paper's Table 1 matrix."""
    return toy_matrix()


@pytest.fixture(scope="session")
def phone_small() -> np.ndarray:
    """A small phone-like matrix (200 x 366) for fast method tests."""
    return phone_matrix(200)


@pytest.fixture(scope="session")
def phone_medium() -> np.ndarray:
    """A medium phone-like matrix (600 x 366) for integration tests."""
    return phone_matrix(600)


@pytest.fixture(scope="session")
def stocks_small() -> np.ndarray:
    """A small stocks matrix (120 x 128)."""
    return stocks_matrix(120)


@pytest.fixture()
def low_rank(rng) -> np.ndarray:
    """An exactly rank-3 matrix with known structure."""
    u = rng.standard_normal((80, 3))
    v = rng.standard_normal((3, 40))
    return u @ v


@pytest.fixture()
def enabled_registry():
    """The process-wide telemetry registry, enabled for one test.

    Restores the disabled/empty state afterwards so later tests neither
    observe leaked counters nor pay the enabled-path cost.
    """
    from repro.obs import registry

    registry.reset()
    registry.enable()
    try:
        yield registry
    finally:
        registry.disable()
        registry.reset()
