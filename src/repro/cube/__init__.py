"""DataCube compression (paper Section 6.1).

The SVD/SVDD machinery applies to multidimensional data by collapsing a
``productid x storeid x weekid`` cube into a matrix — either
``productid x (storeid*weekid)`` or ``(productid*storeid) x weekid`` —
after which cells remain individually reconstructible
(:class:`CubeCollapse`, :class:`CompressedCube`).

The alternative the paper cites from the PCA literature is 3-mode PCA:
approximate ``x_ijk`` by ``sum_{h,l,r} a_ih b_jl c_kr g_hlr``
(:class:`Tucker3`, fitted by HOSVD with optional HOOI/ALS refinement).
Comparing the two is the paper's stated open question; the
``bench_cube`` benchmark does exactly that.
"""

from repro.cube.collapse import CompressedCube, CubeCollapse
from repro.cube.nmode import TuckerN, tucker_space_bytes
from repro.cube.tucker import Tucker3, tucker3_space_bytes

__all__ = [
    "CompressedCube",
    "CubeCollapse",
    "Tucker3",
    "TuckerN",
    "tucker3_space_bytes",
    "tucker_space_bytes",
]
