"""Concurrent query serving over one shared backend.

The paper's target deployment (Section 1) is a warehouse answering ad
hoc queries from many analysts at once.  A single
:class:`~repro.query.engine.QueryEngine` call is already cheap, but the
interesting systems question is throughput under concurrency: can N
clients share one :class:`~repro.core.store.CompressedMatrix` without
serializing on the storage layer?

:class:`QueryExecutor` answers that with a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` over one engine.  The
design leans on three properties of the stack underneath:

- ``FilePager`` reads with positionless ``os.pread``, so concurrent
  page fetches never race on a shared file offset and take no lock;
- ``BufferPool`` stripes its cache across shards (hash of the page id),
  so two threads touching different pages rarely contend on the same
  lock, and all page data is immutable once cached;
- NumPy releases the GIL inside the GEMM/gather kernels that dominate
  aggregate evaluation, so threads genuinely overlap on multi-core
  hosts (and still overlap I/O with compute on one core).

Per-query accounting is preserved: each result carries its own
:class:`~repro.obs.profile.QueryProfile` when telemetry is enabled,
and the executor exports ``executor.concurrency`` (in-flight queries),
``executor.workers``, and ``executor.queries`` through the process
registry.

Example::

    with QueryExecutor(model, max_workers=4) as pool:
        report = pool.run_batch(["sum() rows 0:50 cols 0:30", (3, 7)])
    print(report.throughput_qps)
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.exceptions import DeadlineExceededError, QueryError
from repro.obs.registry import registry as _obs
from repro.obs.tracing import current_trace_id, new_trace_id, trace
from repro.query.engine import AggregateQuery, CellQuery, QueryEngine, QueryResult
from repro.query.parser import parse_query

__all__ = [
    "BatchReport",
    "QueryExecutor",
    "batch_throughput",
    "coerce_query",
    "usable_cpu_count",
]

#: Upper bound on the default worker count: query work is a mix of
#: GIL-releasing kernels and page I/O, so a couple of threads beyond
#: the core count helps, but unbounded pools just burn memory.
_DEFAULT_MAX_WORKERS = 8

Query = "CellQuery | AggregateQuery | tuple | str"


def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the schedulable set —
    in a cgroup-limited CI container it happily says 16 while the
    process is pinned to one core.  CPU affinity
    (``os.sched_getaffinity``) reflects the real ceiling on parallel
    speedup, so default pool sizes and the benchmark's scaling gates
    use it, falling back to ``cpu_count`` on platforms without
    affinity support.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def _default_workers() -> int:
    return max(1, min(_DEFAULT_MAX_WORKERS, usable_cpu_count() + 2))


def batch_throughput(queries: int, wall_s: float) -> float:
    """Queries per second, finite by construction.

    A batch so small that ``wall_s`` underflows the timer's resolution
    used to report ``inf``, which then poisoned every ratio computed
    from BENCH_concurrency records; clamp to 0.0 instead — an
    unmeasurably fast batch carries no throughput information.
    """
    if wall_s <= 0.0:
        return 0.0
    return queries / wall_s


def coerce_query(query):
    """Normalize the accepted query forms to engine query objects.

    The shared front door of both executors: :class:`CellQuery` /
    :class:`AggregateQuery` pass through, query text goes through
    :func:`~repro.query.parser.parse_query`, and ``(row, col)`` tuples
    become cell queries.
    """
    if isinstance(query, (CellQuery, AggregateQuery)):
        return query
    if isinstance(query, str):
        return parse_query(query)
    if isinstance(query, tuple):
        if len(query) != 2:
            raise QueryError(
                f"cell query tuple must be (row, col); got {len(query)} elements"
            )
        try:
            return CellQuery(int(query[0]), int(query[1]))
        except (TypeError, ValueError) as exc:
            raise QueryError(
                f"cell query indices must be integers, got {query!r}"
            ) from exc
    raise QueryError(
        f"unsupported query form {type(query).__name__}: expected "
        "CellQuery, AggregateQuery, (row, col), or query text"
    )


@dataclass(frozen=True)
class BatchReport:
    """Outcome of :meth:`QueryExecutor.run_batch`.

    ``results`` preserves submission order.  ``throughput_qps`` is
    queries divided by wall time (0.0 when the wall time rounds to
    zero — never ``inf``), the figure the concurrency benchmark plots
    against worker count.
    """

    results: list = field(repr=False)
    queries: int
    workers: int
    wall_s: float
    throughput_qps: float


class QueryExecutor:
    """A bounded thread pool serving queries against one backend.

    Accepts the same backend types as :class:`QueryEngine` (ndarray,
    ``MatrixStore``, in-memory models, ``CompressedMatrix``) and the
    same query forms: :class:`CellQuery`, :class:`AggregateQuery`,
    ``(row, col)`` tuples, or query text for
    :func:`~repro.query.parser.parse_query`.

    Args:
        backend: shared data source; must be thread-safe for reads
            (every shipped backend is).
        max_workers: pool size; defaults to ``min(8, cores + 2)``.
        use_fast_path: forwarded to the underlying engine.
        close_backend: close the backend on :meth:`shutdown` (used by
            :meth:`repro.warehouse.Warehouse.executor`, which opens the
            model itself and hands ownership to the pool).
    """

    def __init__(
        self,
        backend,
        max_workers: int | None = None,
        use_fast_path: bool = True,
        close_backend: bool = False,
    ) -> None:
        workers = _default_workers() if max_workers is None else int(max_workers)
        if workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._engine = QueryEngine(backend, use_fast_path=use_fast_path)
        self._backend = backend
        self._initial_backend = backend
        self._close_backend = close_backend
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._shutdown = False
        self._lock = threading.Lock()
        self._retired_backends: list = []
        self._closer: threading.Thread | None = None
        self.max_workers = workers
        _obs.gauge("executor.workers").set(workers)

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work, drain the pool, then close owned
        backends (idempotent).

        With ``wait=False`` the call returns immediately, but the
        backends (current *and* retired) are **not** closed until the
        pool has actually drained: in-flight worker threads may still
        be reading from them, and closing the page file under a live
        query turns a graceful drain into spurious
        ``StoreClosedError``/``OSError`` answers.  A daemon closer
        thread waits out the drain and performs the close.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        if wait:
            self._pool.shutdown(wait=True)
            self._close_backends()
            return
        self._pool.shutdown(wait=False)
        # Defer the close until the last in-flight query finishes;
        # ThreadPoolExecutor.shutdown(wait=True) is idempotent and only
        # joins here, so this blocks exactly until the drain completes.
        closer = threading.Thread(
            target=self._drain_then_close,
            name="repro-query-closer",
            daemon=True,
        )
        self._closer = closer
        closer.start()

    def _drain_then_close(self) -> None:
        self._pool.shutdown(wait=True)
        self._close_backends()

    def _close_backends(self) -> None:
        """Close executor-owned backends after the pool has drained.

        Backends the executor opened itself (refresh() reopens) are
        always ours to close; the caller's original backend only when
        ownership was handed over via close_backend.
        """
        for backend in (*self._retired_backends, self._backend):
            if backend is self._initial_backend and not self._close_backend:
                continue
            if hasattr(backend, "close"):
                backend.close()
        self._retired_backends.clear()

    def refresh(self, backend=None) -> None:
        """Start answering from a new backend snapshot.

        After an incremental append
        (:func:`repro.core.update.append_columns` /
        :func:`~repro.core.update.append_rows`) the live executor still
        serves the pre-append files through its open handles; call
        ``refresh()`` to pick up the post-append state.  With no
        argument the current backend must support ``reopen()``
        (:class:`~repro.core.store.CompressedMatrix` does) and the
        executor reopens the same directory; otherwise the given
        backend is swapped in.

        In-flight queries finish against the snapshot they started on
        (the engine captures its backend once per query), so answers
        are always wholly-old or wholly-new.  Replaced backends are
        retired, not closed — in-flight queries may still hold them —
        and are closed at :meth:`shutdown`.  Backends passed to
        ``refresh()`` become executor-owned; the construction-time
        backend keeps the ``close_backend`` ownership it was created
        with.
        """
        if backend is None:
            if not hasattr(self._backend, "reopen"):
                raise QueryError(
                    f"backend {type(self._backend).__name__} has no reopen(); "
                    "pass the replacement backend explicitly"
                )
            backend = self._backend.reopen()
        with self._lock:
            if self._shutdown:
                raise RuntimeError("QueryExecutor is shut down")
            self._retired_backends.append(self._backend)
            self._backend = backend
            self._engine.refresh(backend)
        _obs.counter("executor.refreshes").inc()

    # -- query dispatch -------------------------------------------------

    @property
    def engine(self) -> QueryEngine:
        """The shared engine (e.g. for ``explain`` or path stats)."""
        return self._engine

    def submit(self, query, deadline_ns: int | None = None) -> "Future[QueryResult]":
        """Schedule one query; returns a future of its
        :class:`~repro.query.engine.QueryResult`.

        ``deadline_ns`` (a ``time.monotonic_ns`` instant) makes the
        worker drop the query with
        :class:`~repro.exceptions.DeadlineExceededError` if it is still
        queued when the deadline passes — queued-but-doomed work never
        occupies a worker.
        """
        coerced = self._coerce(query)
        # Each query gets its trace id at submit time — inheriting the
        # caller's ambient trace when one is active — so the worker
        # thread's spans, profile and log lines all join on it.
        trace_id = (
            (current_trace_id() or new_trace_id()) if _obs.enabled else None
        )
        # The shutdown check and the pool submit must be one atomic
        # step: an unlocked check could pass just as shutdown() flips
        # the flag, scheduling work onto a closing pool whose backends
        # are about to be released.  shutdown() sets the flag under
        # this same lock, so any submit that wins the race has its
        # task enqueued before the pool stops, and the deferred
        # backend close waits for it to drain.
        with self._lock:
            if self._shutdown:
                raise RuntimeError("QueryExecutor is shut down")
            return self._pool.submit(self._run_one, coerced, trace_id, deadline_ns)

    def map(self, queries) -> list:
        """Run ``queries`` across the pool; results in submission order.

        A failing query raises when its slot is reached, after all
        submissions have been scheduled.
        """
        futures = [self.submit(query) for query in queries]
        return [future.result() for future in futures]

    def run_batch(self, queries) -> BatchReport:
        """Run ``queries`` and report batch throughput alongside the
        ordered results."""
        items = list(queries)
        start = time.perf_counter()
        results = self.map(items)
        wall = time.perf_counter() - start
        return BatchReport(
            results=results,
            queries=len(items),
            workers=self.max_workers,
            wall_s=wall,
            throughput_qps=batch_throughput(len(items), wall),
        )

    # -- internals ------------------------------------------------------

    def _coerce(self, query):
        """Normalize the accepted query forms to engine query objects."""
        return coerce_query(query)

    def _run_one(
        self,
        query,
        trace_id: str | None = None,
        deadline_ns: int | None = None,
    ) -> QueryResult:
        """Worker body: execute one query with in-flight accounting."""
        if deadline_ns is not None and time.monotonic_ns() >= deadline_ns:
            _obs.counter("executor.deadline_drops").inc()
            raise DeadlineExceededError(
                "deadline expired before a worker picked the query up"
            )
        gauge = _obs.gauge("executor.concurrency")
        gauge.add(1.0)
        try:
            if trace_id is not None:
                with trace(trace_id):
                    result = self._engine.execute(query)
            else:
                result = self._engine.execute(query)
            _obs.counter("executor.queries").inc()
            return result
        finally:
            gauge.add(-1.0)
