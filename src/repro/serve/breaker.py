"""Circuit breaker over the worker-process pool.

A crashing worker is survivable — the executor rebuilds its pool and
serving continues — but a crash *loop* (bad model file, OOM treadmill,
poisoned query replayed by retrying clients) turns every request into
a multi-second fork-and-fail cycle.  The breaker watches rebuild
events and, past a threshold, stops feeding the pool entirely:

- **closed** — healthy; requests flow to the pool.
- **open** — ``failures`` rebuilds landed within ``window_s``; the
  pool is presumed sick.  Requests divert to the degraded local path
  (or shed) until ``cooldown_s`` passes.
- **half-open** — cooldown expired; exactly one probe request is let
  through.  Success closes the breaker, failure re-opens it and
  restarts the cooldown.

The three states export as the ``server.breaker_state`` gauge
(0 = closed, 1 = half-open, 2 = open) and each trip counts into
``server.breaker_trips``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.obs.registry import registry as _obs

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Failure-windowed breaker with a single half-open probe slot.

    Args:
        failures: failures within ``window_s`` that trip the breaker.
        window_s: sliding window over which failures are counted.
        cooldown_s: open-state dwell before a probe is allowed.
    """

    def __init__(
        self, failures: int = 3, window_s: float = 30.0, cooldown_s: float = 5.0
    ) -> None:
        self.failures = int(failures)
        self.window_s = float(window_s)
        self.cooldown_s = float(cooldown_s)
        self._lock = threading.Lock()
        self._events: deque[float] = deque()
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_out = False
        self._probe_at = 0.0
        self.trips = 0

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when cooled down."""
        with self._lock:
            return self._advance_locked(time.monotonic())

    def _advance_locked(self, now: float) -> str:
        if self._state == OPEN and now - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
            self._probe_out = False
            self._publish_locked()
        return self._state

    def _publish_locked(self) -> None:
        _obs.gauge("server.breaker_state").set(_STATE_GAUGE[self._state])

    def record_failure(self) -> None:
        """Count one failure (a pool rebuild); may trip the breaker.

        Safe to call from any thread — the executor invokes it from
        whatever thread hit the broken pool.
        """
        now = time.monotonic()
        with self._lock:
            self._events.append(now)
            while self._events and now - self._events[0] > self.window_s:
                self._events.popleft()
            tripped = len(self._events) >= self.failures
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open.
                tripped = True
            if tripped and self._state != OPEN:
                self._state = OPEN
                self._opened_at = now
                self._probe_out = False
                self.trips += 1
                _obs.counter("server.breaker_trips").inc()
                self._publish_locked()

    def record_success(self) -> None:
        """A pool answer completed; a half-open probe success closes."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._state = CLOSED
                self._events.clear()
                self._probe_out = False
                self._publish_locked()

    def allow(self) -> bool:
        """May a request be sent to the pool right now?

        Closed: always.  Open: no.  Half-open: the first caller after
        cooldown gets True (the probe slot); everyone else waits for
        the probe's verdict.
        """
        now = time.monotonic()
        with self._lock:
            state = self._advance_locked(now)
            if state == CLOSED:
                return True
            if state == HALF_OPEN:
                # Re-arm an abandoned probe (e.g. its request timed out
                # without a clean success/failure verdict) after a full
                # cooldown, or the breaker would wedge half-open.
                if self._probe_out and now - self._probe_at >= self.cooldown_s:
                    self._probe_out = False
                if not self._probe_out:
                    self._probe_out = True
                    self._probe_at = now
                    return True
            return False
