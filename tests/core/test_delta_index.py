"""Tests for the sorted-array outlier index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta_index import DeltaIndex
from repro.exceptions import ConfigurationError

NUM_COLS = 10


@pytest.fixture()
def index() -> DeltaIndex:
    # Cells (1,2)=5.0, (3,0)=-2.0, (3,7)=1.5, (8,9)=0.25 on a 10-wide matrix.
    keys = [12, 30, 37, 89]
    values = [5.0, -2.0, 1.5, 0.25]
    return DeltaIndex(keys, values, NUM_COLS)


class TestConstruction:
    def test_sorts_unsorted_input(self):
        index = DeltaIndex([30, 12, 89, 37], [-2.0, 5.0, 0.25, 1.5], NUM_COLS)
        assert list(index.keys) == [12, 30, 37, 89]
        assert list(index.values) == [5.0, -2.0, 1.5, 0.25]

    def test_from_items(self):
        index = DeltaIndex.from_items([(30, -2.0), (12, 5.0)], NUM_COLS)
        assert len(index) == 2
        assert index.get(12) == 5.0

    def test_from_empty_items(self):
        index = DeltaIndex.from_items([], NUM_COLS)
        assert len(index) == 0
        assert index.get(0) == 0.0

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            DeltaIndex([1, 2], [1.0], NUM_COLS)

    def test_row_col_decomposition(self, index):
        assert list(index.rows) == [1, 3, 3, 8]
        assert list(index.cols) == [2, 0, 7, 9]


class TestScalarAccess:
    def test_get_present_and_absent(self, index):
        assert index.get(12) == 5.0
        assert index.get(13) == 0.0
        assert index.get(13, default=-1.0) == -1.0

    def test_contains(self, index):
        assert 37 in index
        assert 36 not in index
        assert 1000 not in index

    def test_items_in_key_order(self, index):
        assert list(index.items()) == [
            (12, 5.0),
            (30, -2.0),
            (37, 1.5),
            (89, 0.25),
        ]


class TestVectorizedAccess:
    def test_lookup(self, index):
        out = index.lookup([12, 13, 89, 0, 37])
        assert list(out) == [5.0, 0.0, 0.25, 0.0, 1.5]

    def test_lookup_empty_batch(self, index):
        assert index.lookup(np.empty(0, dtype=np.int64)).size == 0

    def test_for_row(self, index):
        cols, values = index.for_row(3)
        assert list(cols) == [0, 7]
        assert list(values) == [-2.0, 1.5]
        cols, values = index.for_row(2)
        assert cols.size == 0 and values.size == 0

    def test_for_col(self, index):
        rows, values = index.for_col(0)
        assert list(rows) == [3]
        assert list(values) == [-2.0]
        rows, values = index.for_col(5)
        assert rows.size == 0


class TestSelect:
    def test_positions_follow_selection_order(self, index):
        # Unsorted selections: positions must index the given arrays.
        row_sel = np.array([8, 3])
        col_sel = np.array([9, 0])
        row_pos, col_pos, rows, cols, values = index.select(row_sel, col_sel)
        folded = np.zeros((2, 2))
        folded[row_pos, col_pos] += values
        assert folded[0, 0] == 0.25  # (8, 9)
        assert folded[1, 1] == -2.0  # (3, 0)
        assert folded[0, 1] == 0.0 and folded[1, 0] == 0.0

    def test_empty_selection(self, index):
        row_pos, *_rest, values = index.select(np.empty(0), np.array([0]))
        assert row_pos.size == 0 and values.size == 0

    def test_no_deltas_inside(self, index):
        _p, _q, _r, _c, values = index.select(np.array([0, 2]), np.array([1, 4]))
        assert values.size == 0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_select_matches_dict_scan(seed):
    """The vectorized rectangle selection equals the naive dict scan."""
    rng = np.random.default_rng(seed)
    num_cols = int(rng.integers(2, 20))
    num_rows = int(rng.integers(2, 20))
    count = int(rng.integers(0, 30))
    keys = rng.choice(num_rows * num_cols, size=min(count, num_rows * num_cols), replace=False)
    values = rng.standard_normal(keys.size)
    index = DeltaIndex(keys, values, num_cols)

    row_sel = np.unique(rng.integers(0, num_rows, size=5))
    col_sel = np.unique(rng.integers(0, num_cols, size=4))
    fast = np.zeros((row_sel.size, col_sel.size))
    row_pos, col_pos, _r, _c, vals = index.select(row_sel, col_sel)
    fast[row_pos, col_pos] += vals

    slow = np.zeros_like(fast)
    row_positions = {int(r): p for p, r in enumerate(row_sel)}
    col_positions = {int(c): p for p, c in enumerate(col_sel)}
    for key, delta in zip(keys, values):
        row, col = int(key) // num_cols, int(key) % num_cols
        if row in row_positions and col in col_positions:
            slow[row_positions[row], col_positions[col]] += delta
    np.testing.assert_allclose(fast, slow)
