#!/usr/bin/env python3
"""Decision support over a compressed calling-volume warehouse.

The paper's motivating scenario: a dataset of per-customer daily call
volumes too large to keep uncompressed, queried ad hoc by analysts.
This example builds the warehouse fully out-of-core:

1. stream customer rows to an on-disk MatrixStore (the raw warehouse);
2. run the 3-pass SVDD construction against the store — the matrix is
   never materialized in memory;
3. persist the compressed model and serve typical analyst queries,
   reporting both accuracy and disk-access counts.

Run:  python examples/phone_warehouse.py [num_customers]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AggregateQuery,
    CompressedMatrix,
    QueryEngine,
    Selection,
    SVDDCompressor,
    query_error,
)
from repro.data.phone import iter_phone_rows
from repro.query import random_cell_queries
from repro.storage import MatrixStore


def build_warehouse(root: Path, num_customers: int) -> tuple[MatrixStore, CompressedMatrix]:
    print(f"streaming {num_customers} customers x 366 days to disk ...")
    raw = MatrixStore.create_from_rows(
        root / "warehouse.mat", iter_phone_rows(num_customers), num_cols=366
    )
    raw_bytes = root.joinpath("warehouse.mat").stat().st_size
    print(f"raw warehouse: {raw_bytes / 1e6:.1f} MB on disk")

    print("running the 3-pass SVDD construction (10% space budget) ...")
    model = SVDDCompressor(budget_fraction=0.10).fit(raw)
    print(
        f"  passes over the data: {raw.pass_count} (paper: 3)\n"
        f"  k_opt = {model.cutoff} principal components, "
        f"{model.num_deltas} outlier deltas"
    )
    compressed = CompressedMatrix.save(model, root / "compressed")
    comp_bytes = sum(f.stat().st_size for f in (root / "compressed").iterdir())
    print(
        f"compressed model: {comp_bytes / 1e6:.2f} MB on disk "
        f"({comp_bytes / raw_bytes:.1%} of raw)"
    )
    return raw, compressed


def analyst_session(raw: MatrixStore, compressed: CompressedMatrix) -> None:
    num_customers, num_days = raw.shape
    exact = QueryEngine(raw)
    approx = QueryEngine(compressed)

    print("\n--- analyst query 1: single cells (random access) ---")
    compressed.u_pool_stats.reset()
    queries = random_cell_queries(raw.shape, count=200, seed=8)
    errors = []
    for query in queries:
        truth = exact.cell(query).value
        estimate = approx.cell(query).value
        errors.append(abs(truth - estimate))
    print(
        f"200 random cells: mean abs error {np.mean(errors):.4f}, "
        f"max {np.max(errors):.4f}"
    )
    print(
        f"disk accesses for the 200 queries: "
        f"{compressed.u_pool_stats.misses} page misses "
        f"(~{compressed.u_pool_stats.misses / 200:.2f}/query)"
    )

    print("\n--- analyst query 2: weekly totals for key accounts ---")
    week = Selection(rows=range(0, 50), cols=range(7, 14))
    query = AggregateQuery("sum", week)
    truth = exact.aggregate(query).value
    estimate = approx.aggregate(query).value
    print(
        f"total volume, 50 accounts, week 2: exact {truth:.2f}, "
        f"approx {estimate:.2f} (error {query_error(truth, estimate):.4%})"
    )

    print("\n--- analyst query 3: quarter-over-quarter averages ---")
    for label, days in [("Q1", range(0, 91)), ("Q2", range(91, 182))]:
        query = AggregateQuery("avg", Selection(cols=days))
        truth = exact.aggregate(query).value
        estimate = approx.aggregate(query).value
        print(
            f"{label}: exact {truth:.4f}, approx {estimate:.4f} "
            f"(error {query_error(truth, estimate):.4%})"
        )


def main() -> None:
    num_customers = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    with tempfile.TemporaryDirectory() as tmp:
        raw, compressed = build_warehouse(Path(tmp), num_customers)
        analyst_session(raw, compressed)
        compressed.close()
        raw.close()
    print("\ndone.")


if __name__ == "__main__":
    main()
