"""Tests for the serialized delta table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ChecksumError, FormatError
from repro.storage import DeltaFile


class TestRoundtrip:
    def test_basic(self, tmp_path):
        path = tmp_path / "d.bin"
        records = [(5, 1.5), (100, -2.25), (7, 0.125)]
        assert DeltaFile.write(path, records) == 3
        table = DeltaFile.read(path)
        assert len(table) == 3
        assert table.get(5) == 1.5
        assert table.get(100) == -2.25
        assert table.get(7) == 0.125

    def test_empty(self, tmp_path):
        path = tmp_path / "d.bin"
        assert DeltaFile.write(path, []) == 0
        assert len(DeltaFile.read(path)) == 0

    def test_canonical_bytes(self, tmp_path):
        """Same record set in any order -> byte-identical files."""
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        DeltaFile.write(a, [(1, 1.0), (2, 2.0), (3, 3.0)])
        DeltaFile.write(b, [(3, 3.0), (1, 1.0), (2, 2.0)])
        assert a.read_bytes() == b.read_bytes()

    def test_size_matches_prediction(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(i, float(i)) for i in range(37)])
        assert path.stat().st_size == DeltaFile.size_bytes(37)


class TestCorruption:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "d.bin"
        path.write_bytes(b"short")
        with pytest.raises(FormatError):
            DeltaFile.read(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0)])
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError):
            DeltaFile.read(path)

    def test_truncated_records(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0), (2, 2.0)])
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(FormatError):
            DeltaFile.read(path)

    def test_flipped_record_bit(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0), (2, 2.0)])
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumError):
            DeltaFile.read(path)


@settings(max_examples=30, deadline=None)
@given(
    records=st.dictionaries(
        keys=st.integers(0, 2**40),
        values=st.floats(allow_nan=False, allow_infinity=False),
        max_size=60,
    )
)
def test_property_roundtrip(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("deltas") / "d.bin"
    DeltaFile.write(path, records.items())
    table = DeltaFile.read(path)
    assert dict(table.items()) == records
