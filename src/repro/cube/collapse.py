"""Collapsing a 3-d DataCube into a matrix for SVD/SVDD compression.

'We can group these as productid x (storeid x weekid) or as
(productid x storeid) x weekid.  Which we prefer is a function of the
number of values in each dimension.  In general, the more square the
matrix, the better the compression ... since the cells in the array are
reconstructed individually, how dimensions are collapsed makes no
difference to the availability of access.' (Section 6.1)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.svdd import SVDDCompressor
from repro.exceptions import ConfigurationError, QueryError, ShapeError


@dataclass(frozen=True)
class CubeCollapse:
    """A choice of which cube modes become matrix rows vs columns.

    Attributes:
        row_modes: cube axes flattened into the matrix's row index.
        col_modes: cube axes flattened into the matrix's column index.
    """

    row_modes: tuple[int, ...]
    col_modes: tuple[int, ...]

    def __post_init__(self) -> None:
        modes = tuple(sorted(self.row_modes + self.col_modes))
        if modes != tuple(range(len(modes))):
            raise ConfigurationError(
                f"row_modes {self.row_modes} + col_modes {self.col_modes} must "
                "partition the cube's axes"
            )
        if not self.row_modes or not self.col_modes:
            raise ConfigurationError("both sides of the collapse need >= 1 mode")

    def matrix_shape(self, cube_shape: tuple[int, ...]) -> tuple[int, int]:
        """Shape of the collapsed matrix."""
        rows = int(np.prod([cube_shape[m] for m in self.row_modes]))
        cols = int(np.prod([cube_shape[m] for m in self.col_modes]))
        return rows, cols

    def flatten(self, cube: np.ndarray) -> np.ndarray:
        """The collapsed matrix view of ``cube``."""
        arr = np.asarray(cube, dtype=np.float64)
        order = self.row_modes + self.col_modes
        return arr.transpose(order).reshape(self.matrix_shape(arr.shape))

    def cell_of(self, cube_shape: tuple[int, ...], indices: tuple[int, ...]) -> tuple[int, int]:
        """Matrix ``(row, col)`` of cube cell ``indices``."""
        if len(indices) != len(cube_shape):
            raise QueryError(
                f"expected {len(cube_shape)} indices, got {len(indices)}"
            )
        for axis, (idx, extent) in enumerate(zip(indices, cube_shape)):
            if not 0 <= idx < extent:
                raise QueryError(f"index {idx} out of range on axis {axis}")
        row = 0
        for mode in self.row_modes:
            row = row * cube_shape[mode] + indices[mode]
        col = 0
        for mode in self.col_modes:
            col = col * cube_shape[mode] + indices[mode]
        return row, col

    @staticmethod
    def most_square(cube_shape: tuple[int, ...]) -> "CubeCollapse":
        """The single-axis/rest split whose matrix is most nearly square.

        Implements the paper's heuristic for 3-d cubes: pick 'the
        largest size for the smaller dimension'.  Considers every
        partition with one side being a single axis.
        """
        ndim = len(cube_shape)
        if ndim < 2:
            raise ShapeError("cube must have >= 2 dimensions")
        best: CubeCollapse | None = None
        best_ratio = np.inf
        for axis in range(ndim):
            others = tuple(m for m in range(ndim) if m != axis)
            for collapse in (
                CubeCollapse((axis,), others),
                CubeCollapse(others, (axis,)),
            ):
                rows, cols = collapse.matrix_shape(cube_shape)
                ratio = max(rows, cols) / min(rows, cols)
                if ratio < best_ratio:
                    best_ratio = ratio
                    best = collapse
        assert best is not None
        return best


class CompressedCube:
    """A DataCube compressed by collapsing to a matrix and running SVDD."""

    def __init__(
        self,
        cube: np.ndarray,
        budget_fraction: float,
        collapse: CubeCollapse | None = None,
    ) -> None:
        arr = np.asarray(cube, dtype=np.float64)
        if arr.ndim < 2:
            raise ShapeError(f"cube must have >= 2 dimensions, got {arr.ndim}")
        self.cube_shape = tuple(arr.shape)
        self.collapse = collapse or CubeCollapse.most_square(self.cube_shape)
        matrix = self.collapse.flatten(arr)
        self.model = SVDDCompressor(budget_fraction=budget_fraction).fit(matrix)

    def cell(self, *indices: int) -> float:
        """Reconstruct one cube cell through the collapsed model."""
        row, col = self.collapse.cell_of(self.cube_shape, indices)
        return self.model.reconstruct_cell(row, col)

    def reconstruct(self) -> np.ndarray:
        """Materialize the approximate cube."""
        matrix = self.model.reconstruct()
        order = self.collapse.row_modes + self.collapse.col_modes
        permuted_shape = [self.cube_shape[m] for m in order]
        inverse = np.argsort(order)
        return matrix.reshape(permuted_shape).transpose(inverse)

    def space_bytes(self) -> int:
        """Model size under the paper's accounting."""
        return self.model.space_bytes()
