"""One-call, constant-memory construction of a persistent model.

``SVDDCompressor.fit`` followed by ``CompressedMatrix.save`` holds the
``N x k`` matrix ``U`` in memory between the two steps.  That is fine up
to millions of rows, but the truly-out-of-core path the paper's setting
implies should never materialize anything O(N).  :func:`build_compressed`
is that path:

1. pass 1-2 of the SVDD algorithm run through
   :meth:`~repro.core.svdd.SVDDCompressor.select_cutoff` — the *same*
   code path ``fit`` uses, so the two entry points cannot diverge on
   ``k_opt`` or the delta set (their state is O(M^2) plus the delta
   queues, independent of N);
2. pass 3 streams ``U`` rows *directly into the destination page file*
   via :func:`~repro.core.svd.compute_u_to_store` — padded to one row
   per page, in the requested precision;
3. ``V``, the eigenvalues, the deltas and the metadata are written
   beside it, along with the pass-1 state (``gram.npy`` +
   ``update_state.json``) that lets :mod:`repro.core.update` append new
   days or customers later without rescanning the original data.

Peak memory is O(M^2 + gamma), regardless of N.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core import space
from repro.obs.logging import log_event
from repro.obs.registry import registry as _obs
from repro.obs.tracing import span as _span
from repro.core.store import CompressedMatrix, _u_columns, _u_page_size
from repro.core.svd import compute_u_to_store, source_shape
from repro.core.svdd import SVDDCompressor, _record_pass
from repro.exceptions import FormatError
from repro.storage.atomic import staged_directory
from repro.storage.delta_file import DeltaFile
from repro.storage.integrity import write_manifest
from repro.storage.matrix_store import MatrixStore

#: Name of the persisted pass-1 Gram matrix in a model directory.
GRAM_NAME = "gram.npy"
#: Name of the incremental-maintenance bookkeeping file.
UPDATE_STATE_NAME = "update_state.json"
#: Advisory drift level at which appends flag ``rebuild_recommended``.
DRIFT_THRESHOLD_DEFAULT = 0.10


def build_compressed(
    source: MatrixStore | np.ndarray,
    directory: str | os.PathLike,
    budget_fraction: float = 0.10,
    bytes_per_value: int = 8,
    compressor: SVDDCompressor | None = None,
    jobs: int = 1,
) -> CompressedMatrix:
    """Compress ``source`` straight into a model directory.

    Unlike ``compressor.fit(...)`` + ``CompressedMatrix.save(...)``,
    ``U`` never exists in memory: pass 3 streams it into the page file.
    Returns the opened :class:`CompressedMatrix`.

    Args:
        source: the data (on-disk store or ndarray).
        directory: destination model directory.
        budget_fraction: SVDD budget (ignored when ``compressor`` given).
        bytes_per_value: factor precision on disk (8 or 4).  The
            default compressor's space accounting uses the same 'b', so
            a float32 build budgets against 12-byte delta records and
            float32 factors — what actually lands on disk.
        compressor: optional pre-configured :class:`SVDDCompressor`.
        jobs: worker threads for the parallel passes.  ``> 1``
            parallelizes pass 1 (banded Gram accumulation) and overlaps
            pass 3's projection with its page writes; pass 2 and the
            output files are identical either way.
    """
    if bytes_per_value not in (4, 8):
        raise FormatError(f"bytes_per_value must be 4 or 8, got {bytes_per_value}")
    if jobs < 1:
        raise FormatError(f"jobs must be >= 1, got {jobs}")
    directory = Path(directory)
    fitter = compressor or SVDDCompressor(
        budget_fraction=budget_fraction, bytes_per_value=bytes_per_value
    )
    # The on-disk precision must match the compressor's space accounting
    # (a 'b'=4 budget assumes float32 factors and 12-byte delta records
    # actually land on disk), so an explicit compressor wins.
    bytes_per_value = int(getattr(fitter, "bytes_per_value", bytes_per_value))
    factor_dtype = np.float32 if bytes_per_value == 4 else np.float64

    from repro.core.svd import _row_chunks

    num_rows, num_cols = source_shape(source)
    selection = fitter.select_cutoff(source, jobs=jobs)
    k_opt = selection.k_opt
    lam_opt, v_opt = selection.singular_values, selection.v

    # Pass 3 onward writes the model files; they are assembled in a
    # staging sibling and atomically swapped into ``directory`` so an
    # interrupted build leaves either the previous model or nothing.
    pad_cols = _u_columns(k_opt, bytes_per_value)
    padded_v = np.zeros((num_cols, pad_cols))
    padded_v[:, :k_opt] = v_opt
    padded_lam = np.zeros(pad_cols)
    padded_lam[:k_opt] = lam_opt
    # Padded columns have zero singular values -> zero U coordinates.
    with staged_directory(directory) as staging:
        pass3_start = time.perf_counter()
        with _span("build.pass3", rows=num_rows, k_opt=k_opt):
            u_store = compute_u_to_store(
                source,
                padded_lam,
                padded_v,
                staging / "u.mat",
                page_size=_u_page_size(k_opt, bytes_per_value),
                dtype=factor_dtype,
                jobs=jobs,
            )
            u_store.close()
        _record_pass(3, pass3_start, num_rows)

        np.save(staging / "lambda.npy", lam_opt.astype(factor_dtype))
        np.save(staging / "v.npy", v_opt.astype(factor_dtype))

        keys, deltas, _scores = selection.delta_queue.finalize()
        num_deltas = 0
        if keys.shape[0]:
            num_deltas = DeltaFile.write(
                staging / "deltas.bin",
                zip(keys.tolist(), deltas.tolist()),
                bytes_per_value=bytes_per_value,
            )
        delta_rows = {int(key) // num_cols for key in keys}

        # Zero-row flags need U row emptiness; derive from the source pass
        # statistics instead of re-reading U: a row is all-zero iff its
        # projection onto every axis is zero AND it holds no delta, which
        # for non-negative data equals the row itself being zero.  Detect by
        # one more cheap pass over the source (row norms).
        zero_rows = []
        index = 0
        with _span("build.zero_row_scan", rows=num_rows):
            for block in _row_chunks(source):
                norms = np.abs(block).sum(axis=1)
                for offset in np.flatnonzero(norms == 0.0):
                    row = index + int(offset)
                    if row not in delta_rows:
                        zero_rows.append(row)
                index += block.shape[0]
        if zero_rows:
            np.save(
                staging / "zero_rows.npy",
                np.array(sorted(zero_rows), dtype=np.int64),
            )

        meta = {
            "kind": "svdd",
            "rows": num_rows,
            "cols": num_cols,
            "cutoff": k_opt,
            "num_deltas": num_deltas,
            "bloom": fitter.use_bloom,
            "bloom_fpr": fitter.bloom_fpr if fitter.use_bloom else None,
            "zero_rows": len(zero_rows),
            "bytes_per_value": bytes_per_value,
        }
        (staging / "meta.json").write_text(json.dumps(meta, indent=2))

        # Persist the pass-1 state so appends never rescan the data:
        # the Gram matrix carries the spectrum forward, the bookkeeping
        # file carries the energy split the drift estimate needs.
        np.save(staging / GRAM_NAME, selection.gram)
        total_energy = float(np.trace(selection.gram))
        captured_energy = float((lam_opt * lam_opt).sum())
        (staging / UPDATE_STATE_NAME).write_text(
            json.dumps(
                {
                    "format_version": 1,
                    "budget_fraction": float(fitter.budget_fraction),
                    "bytes_per_value": int(fitter.bytes_per_value),
                    "raw_bytes_per_value": fitter.raw_bytes_per_value,
                    "total_energy": total_energy,
                    "captured_energy": captured_energy,
                    "residual_sse": selection.residual_sse,
                    "appends": 0,
                    "rows_appended": 0,
                    "cols_appended": 0,
                    "drift": 0.0,
                    "drift_threshold": DRIFT_THRESHOLD_DEFAULT,
                    "rebuild_recommended": False,
                },
                indent=2,
            )
        )
        # Summaries ride the same staged swap: a freshly built model
        # lands with its rollups already materialized and stamped for
        # generation (appends=0, this delta count).
        from repro.summaries.compute import materialize_summaries

        materialize_summaries(staging)
        write_manifest(staging)
    if _obs.enabled:
        _obs.gauge("build.deltas_retained").set(num_deltas)
        _obs.gauge("build.k_opt").set(k_opt)
        log_event(
            "build.done",
            directory=str(directory),
            rows=num_rows,
            cols=num_cols,
            k_opt=k_opt,
            deltas_retained=num_deltas,
            zero_rows=len(zero_rows),
        )
    return CompressedMatrix.open(directory)


def estimate_build_memory(num_cols: int, budget_fraction: float, num_rows: int) -> int:
    """Rough peak bytes :func:`build_compressed` needs — O(M^2 + gamma).

    Useful for capacity planning before pointing the builder at a very
    large store.  Ignores small constants; dominated by the Gram matrix,
    the k_max working tensors (bounded at 64 MiB), and the delta queues.
    """
    gram = num_cols * num_cols * 8
    gamma = space.delta_budget(num_rows, num_cols, 1, budget_fraction)
    queues = 2 * gamma * 24  # keys + values + scores at 2x capacity
    return gram + min(64 * 1024 * 1024, queues) + 64 * 1024 * 1024
