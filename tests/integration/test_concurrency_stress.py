"""Concurrency stress: many threads, one model, bit-identical answers.

The whole point of the lock-free pager and sharded pool is that
concurrent readers cannot observe torn pages, stale bytes, or each
other's file offsets.  These tests hammer one shared
:class:`~repro.core.store.CompressedMatrix` from many threads running
interleaved cell queries, aggregates, and fresh ``open()`` calls, and
require every answer to equal — ``==``, not approx — the
single-threaded answer.  A second round repeats the exercise under
injected transient read faults, which the pager's retry loop must
absorb without changing a single bit.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import CompressedMatrix, build_compressed
from repro.query import AggregateQuery, CellQuery, QueryEngine, Selection
from repro.storage import faults
from repro.storage.faults import FaultPlan

THREADS = 8
ROUNDS = 6


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    rng = np.random.default_rng(99)
    u = rng.standard_normal((160, 5))
    v = rng.standard_normal((5, 48))
    directory = tmp_path_factory.mktemp("stress") / "model"
    build_compressed(u @ v, directory).close()
    return directory


def _workload(shape, seed):
    """A deterministic per-thread mix of cell and aggregate queries."""
    rng = np.random.default_rng(seed)
    rows, cols = shape
    queries = []
    for index in range(ROUNDS):
        queries.append(
            CellQuery(int(rng.integers(0, rows)), int(rng.integers(0, cols)))
        )
        r0 = int(rng.integers(0, rows - 8))
        c0 = int(rng.integers(0, cols - 8))
        function = ("sum", "avg", "min", "max", "stddev", "count")[index % 6]
        queries.append(
            AggregateQuery(
                function,
                Selection(rows=range(r0, r0 + 8), cols=range(c0, c0 + 8)),
            )
        )
    return queries


def _run(engine, query):
    if isinstance(query, CellQuery):
        return engine.cell(query).value
    return engine.aggregate(query).value


def _stress(model_dir, expected):
    """Run every thread's workload concurrently against one shared model
    (plus per-thread reopened handles) and compare to ``expected``."""
    shared = CompressedMatrix.open(model_dir)
    shared_engine = QueryEngine(shared)
    barrier = threading.Barrier(THREADS)
    failures: list[str] = []

    def body(thread_index: int) -> None:
        try:
            queries = _workload(shared.shape, seed=thread_index)
            barrier.wait()
            for round_index in range(3):
                if round_index == 1:
                    # Interleave a fresh open: a private handle over the
                    # same files must agree with the shared one.
                    private = CompressedMatrix.open(model_dir)
                    engine = QueryEngine(private)
                else:
                    private = None
                    engine = shared_engine
                for query, want in zip(queries, expected[thread_index]):
                    got = _run(engine, query)
                    if got != want:
                        failures.append(
                            f"thread {thread_index} round {round_index}: "
                            f"{query} -> {got!r}, expected {want!r}"
                        )
                if private is not None:
                    private.close()
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append(f"thread {thread_index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=body, args=(index,)) for index in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    shared.close()
    assert not failures, "\n".join(failures[:10])


@pytest.fixture(scope="module")
def expected(model_dir):
    """Single-threaded ground truth for every thread's workload."""
    model = CompressedMatrix.open(model_dir)
    engine = QueryEngine(model)
    truth = {
        index: [_run(engine, q) for q in _workload(model.shape, seed=index)]
        for index in range(THREADS)
    }
    model.close()
    return truth


class TestConcurrencyStress:
    def test_interleaved_queries_bit_identical(self, model_dir, expected):
        _stress(model_dir, expected)

    def test_bit_identical_under_transient_faults(self, model_dir, expected):
        """Scripted EIO blips on u.mat reads: the retry loop absorbs
        them and answers do not change by a single bit."""
        plan = FaultPlan(
            path_substring="u.mat", fail_read_at=5, fail_reads=1
        )
        with faults.inject(plan):
            _stress(model_dir, expected)
        assert plan.injected >= 1

    def test_executor_against_stress_workload(self, model_dir, expected):
        """The executor path produces the same bits as raw threads."""
        from repro.query import QueryExecutor

        with CompressedMatrix.open(model_dir) as model:
            with QueryExecutor(model, max_workers=THREADS) as pool:
                for index in range(THREADS):
                    results = pool.map(_workload(model.shape, seed=index))
                    assert [r.value for r in results] == expected[index]
