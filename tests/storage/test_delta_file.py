"""Tests for the serialized delta table."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ChecksumError, FormatError
from repro.storage import DeltaFile


class TestRoundtrip:
    def test_basic(self, tmp_path):
        path = tmp_path / "d.bin"
        records = [(5, 1.5), (100, -2.25), (7, 0.125)]
        assert DeltaFile.write(path, records) == 3
        table = DeltaFile.read(path)
        assert len(table) == 3
        assert table.get(5) == 1.5
        assert table.get(100) == -2.25
        assert table.get(7) == 0.125

    def test_empty(self, tmp_path):
        path = tmp_path / "d.bin"
        assert DeltaFile.write(path, []) == 0
        assert len(DeltaFile.read(path)) == 0

    def test_canonical_bytes(self, tmp_path):
        """Same record set in any order -> byte-identical files."""
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        DeltaFile.write(a, [(1, 1.0), (2, 2.0), (3, 3.0)])
        DeltaFile.write(b, [(3, 3.0), (1, 1.0), (2, 2.0)])
        assert a.read_bytes() == b.read_bytes()

    def test_size_matches_prediction(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(i, float(i)) for i in range(37)])
        assert path.stat().st_size == DeltaFile.size_bytes(37)


class TestFloat32Records:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "d.bin"
        records = [(5, 1.5), (1 << 40, -2.25), (7, 0.125)]
        assert DeltaFile.write(path, records, bytes_per_value=4) == 3
        table = DeltaFile.read(path)
        assert table.get(5) == 1.5  # exactly representable in float32
        assert table.get(1 << 40) == -2.25  # keys stay full int64
        assert table.get(7) == 0.125

    def test_records_are_12_bytes(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(i, float(i)) for i in range(50)], bytes_per_value=4)
        header = DeltaFile.size_bytes(0, bytes_per_value=4)
        assert path.stat().st_size == header + 50 * 12
        assert path.stat().st_size == DeltaFile.size_bytes(50, bytes_per_value=4)

    def test_values_quantized_to_float32(self, tmp_path):
        import numpy as np

        path = tmp_path / "d.bin"
        value = 1.0 + 1e-12  # not representable in float32
        DeltaFile.write(path, [(3, value)], bytes_per_value=4)
        assert DeltaFile.read(path).get(3) == float(np.float32(value))

    def test_corruption_still_detected(self, tmp_path):
        from repro.exceptions import ChecksumError

        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0), (2, 2.0)], bytes_per_value=4)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumError):
            DeltaFile.read(path)

    def test_invalid_precision_rejected(self, tmp_path):
        with pytest.raises(FormatError):
            DeltaFile.write(tmp_path / "d.bin", [(1, 1.0)], bytes_per_value=2)
        with pytest.raises(FormatError):
            DeltaFile.size_bytes(1, bytes_per_value=2)


class TestExpectedCount:
    def test_mismatch_rejected(self, tmp_path):
        """A delta file whose record count disagrees with the model
        metadata is stale (e.g. a torn append) and must not be served."""
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(i, float(i)) for i in range(10)])
        with pytest.raises(FormatError, match="expects"):
            DeltaFile.read_arrays(path, expected_count=12)

    def test_match_accepted(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(i, float(i)) for i in range(10)])
        keys, values = DeltaFile.read_arrays(path, expected_count=10)
        assert keys.size == values.size == 10


class TestCorruption:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "d.bin"
        path.write_bytes(b"short")
        with pytest.raises(FormatError):
            DeltaFile.read(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0)])
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(FormatError):
            DeltaFile.read(path)

    def test_truncated_records(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0), (2, 2.0)])
        raw = path.read_bytes()
        path.write_bytes(raw[:-8])
        with pytest.raises(FormatError):
            DeltaFile.read(path)

    def test_flipped_record_bit(self, tmp_path):
        path = tmp_path / "d.bin"
        DeltaFile.write(path, [(1, 1.0), (2, 2.0)])
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumError):
            DeltaFile.read(path)


@settings(max_examples=30, deadline=None)
@given(
    records=st.dictionaries(
        keys=st.integers(0, 2**40),
        values=st.floats(allow_nan=False, allow_infinity=False),
        max_size=60,
    )
)
def test_property_roundtrip(tmp_path_factory, records):
    path = tmp_path_factory.mktemp("deltas") / "d.bin"
    DeltaFile.write(path, records.items())
    table = DeltaFile.read(path)
    assert dict(table.items()) == records


class TestMapArrays:
    """The zero-copy mmap twin of read_arrays (worker shared mapping)."""

    def _write(self, path, count=50, bytes_per_value=8):
        records = [(i * 7, float(i) - 3.5) for i in range(count)]
        DeltaFile.write(path, records, bytes_per_value=bytes_per_value)
        return records

    @pytest.mark.parametrize("bytes_per_value", [8, 4])
    def test_matches_read_arrays(self, tmp_path, bytes_per_value):
        path = tmp_path / "d.bin"
        self._write(path, bytes_per_value=bytes_per_value)
        keys, values = DeltaFile.read_arrays(path)
        mapped_keys, mapped_values, mm = DeltaFile.map_arrays(path)
        try:
            import numpy as np

            np.testing.assert_array_equal(mapped_keys, keys)
            np.testing.assert_array_equal(mapped_values, values)
            assert mapped_values.dtype == np.float64
        finally:
            del mapped_keys, mapped_values
            mm.close()

    def test_float64_values_are_zero_copy(self, tmp_path):
        path = tmp_path / "d.bin"
        self._write(path)
        keys, values, mm = DeltaFile.map_arrays(path)
        try:
            # Both arrays are views over the mapping, not heap copies.
            assert keys.base is not None and values.base is not None
            assert not keys.flags.owndata and not values.flags.owndata
        finally:
            del keys, values
            mm.close()

    def test_corruption_detected(self, tmp_path):
        path = tmp_path / "d.bin"
        self._write(path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumError):
            DeltaFile.map_arrays(path)

    def test_key_range_enforced(self, tmp_path):
        path = tmp_path / "d.bin"
        self._write(path, count=10)  # max key 63
        with pytest.raises(FormatError):
            DeltaFile.map_arrays(path, num_cells=50)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "d.bin"
        self._write(path, count=10)
        with pytest.raises(FormatError):
            DeltaFile.map_arrays(path, expected_count=11)
