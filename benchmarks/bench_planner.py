"""Planner calibration: predicted route costs vs measured latencies.

The cost-based planner is only trustworthy if its *ranking* survives
contact with the hardware: the route it prices cheapest must actually
be the fastest to execute.  This bench builds the phone model, forces
each route in turn (summary = default engine on a covered selection,
factor = summaries disabled, stream = fast path disabled too, svd =
the SVD-only brownout engine), records the planner's predicted cost
and pages next to the measured wall time and buffer-pool accesses, and
asserts the predicted ordering of the exact routes {summary, factor,
stream} matches the measured ordering.  The approximate ``svd`` route
is recorded ungated — it competes on error budget, not just latency —
and the zero-page property of the summary route is asserted outright.

Emits ``benchmarks/results/BENCH_planner.json`` for the CI acceptance
step.
"""

from __future__ import annotations

import time

from benchmarks.conftest import emit, emit_json, format_table
from repro.core import CompressedMatrix, build_compressed
from repro.data import phone_matrix
from repro.query import AggregateQuery, QueryEngine, Selection

ROWS = 5_000
BUDGET = 0.10
REPEATS = 5


def _measure(engine, query, repeats=REPEATS) -> float:
    """Median wall seconds of one aggregate on a warm engine."""
    engine.aggregate(query)  # warm the pool and code paths
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.aggregate(query)
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def test_planner_ranking_matches_measured(tmp_path_factory, benchmark):
    root = tmp_path_factory.mktemp("planner")
    data = phone_matrix(ROWS)
    build_compressed(data, root / "model", BUDGET).close()

    # A dashboard aggregate covered by the rollups, answerable by every
    # route: the engines below force each lattice arm onto the same
    # query so the comparison is apples-to-apples.
    query = AggregateQuery("avg", Selection(cols=range(0, 120)))

    with CompressedMatrix.open(root / "model") as store:
        engines = {
            "summary": QueryEngine(store),
            "factor": QueryEngine(store, use_summaries=False),
            "stream": QueryEngine(
                store, use_summaries=False, use_fast_path=False
            ),
            "svd": QueryEngine(
                store, use_summaries=False, include_deltas=False
            ),
        }

        # Price every route first, against the same cold buffer pool —
        # measuring one route warms the pool and would skew the next
        # route's predicted page costs.
        routes: dict[str, dict] = {}
        for name, engine in engines.items():
            plan = engine.plan(query)
            assert plan.route.name == name, (
                f"engine flags failed to force {name!r}: planned "
                f"{plan.route.name!r}"
            )
            routes[name] = {
                "predicted_cost_ms": plan.route.cost_ms,
                "predicted_pages": plan.route.pages,
                "error_bound": plan.route.error_bound,
            }

        for name, engine in engines.items():
            store.u_pool_stats.reset()
            result = engine.aggregate(query)
            assert result.route == name  # execute follows the plan
            routes[name]["measured_pages"] = store.u_pool_stats.accesses
            routes[name]["measured_ms"] = _measure(engine, query) * 1e3

        benchmark(engines["summary"].aggregate, query)

    # The summary route's zero-page property, measured not predicted.
    assert routes["summary"]["measured_pages"] == 0, routes["summary"]
    assert routes["summary"]["predicted_pages"] == 0

    # Acceptance: the planner's cost ranking over the exact routes is
    # the measured latency ranking.  (svd is approximate — it is chosen
    # on error budget, so it stays out of the gate.)
    exact = ("summary", "factor", "stream")
    predicted_order = sorted(exact, key=lambda r: routes[r]["predicted_cost_ms"])
    measured_order = sorted(exact, key=lambda r: routes[r]["measured_ms"])
    assert predicted_order == measured_order, (
        f"planner ranks {predicted_order} but hardware says {measured_order}"
    )

    rows = [
        [
            name,
            f"{stats['predicted_cost_ms']:.3f}",
            f"{stats['measured_ms']:.3f}",
            f"{stats['predicted_pages']}",
            f"{stats['measured_pages']}",
            "exact" if stats["error_bound"] == 0.0 else f"{stats['error_bound']:.4f}",
        ]
        for name, stats in routes.items()
    ]
    emit(
        "planner",
        format_table(
            f"Planner calibration ({ROWS} x 366, budget {BUDGET})",
            ["route", "pred ms", "meas ms", "pred pages", "meas pages", "bound"],
            rows,
        ),
    )
    emit_json(
        "planner",
        params={
            "rows": ROWS,
            "cols": 366,
            "budget_fraction": BUDGET,
            "query": "avg cols 0:120",
            "repeats": REPEATS,
        },
        metrics={
            "routes": routes,
            "predicted_order": predicted_order,
            "measured_order": measured_order,
            "ranking_consistent": predicted_order == measured_order,
            "summary_pages_on_hit": routes["summary"]["measured_pages"],
        },
    )
