"""Tests for the textual query language."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import QueryError
from repro.query import AggregateQuery, CellQuery, QueryEngine, Selection, parse_query


class TestCellSyntax:
    def test_basic(self):
        query = parse_query("cell(3, 5)")
        assert query == CellQuery(3, 5)

    def test_whitespace_and_case(self):
        assert parse_query("  CELL ( 12 ,  7 )  ") == CellQuery(12, 7)

    def test_negative_rejected(self):
        with pytest.raises(QueryError):
            parse_query("cell(-1, 5)")


class TestAggregateSyntax:
    def test_bare_function(self):
        query = parse_query("sum()")
        assert isinstance(query, AggregateQuery)
        assert query.function == "sum"
        assert query.selection.rows is None
        assert query.selection.cols is None

    def test_rows_range(self):
        query = parse_query("avg() rows 0:100")
        assert list(query.selection.resolve((200, 10))[0]) == list(range(100))

    def test_rows_and_cols(self):
        query = parse_query("stddev() rows 5:10 cols 2:4")
        rows, cols = query.selection.resolve((20, 10))
        assert list(rows) == [5, 6, 7, 8, 9]
        assert list(cols) == [2, 3]

    def test_index_list(self):
        query = parse_query("max() rows 3,17,42")
        rows, _ = query.selection.resolve((50, 5))
        assert list(rows) == [3, 17, 42]

    def test_case_insensitive_keywords(self):
        query = parse_query("AVG() ROWS 0:5 COLS 1:3")
        assert query.function == "avg"

    def test_every_aggregate_parses(self):
        for fn in ("sum", "avg", "count", "min", "max", "stddev"):
            assert parse_query(f"{fn}()").function == fn


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "median()",  # unknown aggregate
            "avg rows 0:5",  # missing parens
            "avg() rows",  # dangling keyword
            "avg() rows 5:5",  # empty range
            "avg() rows 0:5:10",  # malformed range
            "avg() rows a:b",  # non-numeric
            "definitely not a query",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QueryError):
            parse_query(text)


class TestEndToEnd:
    def test_parsed_query_executes(self, rng):
        data = rng.random((30, 8))
        engine = QueryEngine(data)
        value = engine.aggregate(parse_query("sum() rows 0:10 cols 0:4")).value
        assert value == pytest.approx(float(data[:10, :4].sum()))

    def test_parsed_cell_executes(self, rng):
        data = rng.random((30, 8))
        engine = QueryEngine(data)
        assert engine.cell(parse_query("cell(3, 5)")).value == data[3, 5]


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.parser import format_query


class TestFormatQuery:
    def test_cell(self):
        assert format_query(CellQuery(3, 5)) == "cell(3, 5)"

    def test_aggregate_with_ranges(self):
        query = AggregateQuery(
            "avg", Selection(rows=range(0, 100), cols=range(7, 14))
        )
        assert format_query(query) == "avg() rows 0:100 cols 7:14"

    def test_bare(self):
        assert format_query(AggregateQuery("sum", Selection())) == "sum()"


@settings(max_examples=60, deadline=None)
@given(
    function=st.sampled_from(["sum", "avg", "count", "min", "max", "stddev"]),
    row_spec=st.one_of(
        st.none(),
        st.tuples(st.integers(0, 50), st.integers(1, 50)),
        st.lists(st.integers(0, 99), min_size=1, max_size=8, unique=True),
    ),
    col_spec=st.one_of(
        st.none(),
        st.tuples(st.integers(0, 50), st.integers(1, 50)),
    ),
)
def test_property_format_parse_roundtrip(function, row_spec, col_spec):
    """format -> parse resolves to the same cells on a 100 x 100 matrix."""

    def to_selection_arg(spec):
        if spec is None:
            return None
        if isinstance(spec, tuple):
            start, length = spec
            return range(start, start + length)
        return spec

    original = AggregateQuery(
        function,
        Selection(rows=to_selection_arg(row_spec), cols=to_selection_arg(col_spec)),
    )
    recovered = parse_query(format_query(original))
    assert recovered.function == original.function
    shape = (100, 100)
    orig_rows, orig_cols = original.selection.resolve(shape)
    rec_rows, rec_cols = recovered.selection.resolve(shape)
    assert orig_rows.tolist() == rec_rows.tolist()
    assert orig_cols.tolist() == rec_cols.tolist()
