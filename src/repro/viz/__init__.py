"""Visualization in SVD space (paper Appendix A).

SVD 'readily gives the first 2 or 3 axes' — projecting every time
sequence onto the leading principal components yields a scatter plot
showing the dataset's density, structure, and outliers (paper Fig. 11).
This package computes those projections, spots the outliers the paper
suggests storing as deltas, and renders terminal-friendly ASCII scatter
plots so the benchmark can 'draw' Fig. 11 in text output.
"""

from repro.viz.scatter import (
    ascii_histogram,
    ascii_scatter,
    outlier_rows,
    scatter_coordinates,
)

__all__ = [
    "ascii_histogram",
    "ascii_scatter",
    "outlier_rows",
    "scatter_coordinates",
]
