"""In-memory model objects for the SVD and SVDD compressed representations.

A :class:`SVDModel` holds the truncated factors ``U`` (N x k), the
eigenvalues ``Lambda`` (k,) and ``V`` (M x k) of the paper's Eq. 8, and
reconstructs cells with Eq. 12 in O(k).  A :class:`SVDDModel` wraps an
SVD model with the outlier delta table and its Bloom-filter front
(Section 4.2): reconstruction first computes the SVD estimate, then
corrects it exactly if the cell is a recorded outlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import space
from repro.core.delta_index import DeltaIndex
from repro.exceptions import ConfigurationError, QueryError, ShapeError
from repro.structures.bloom import BloomFilter
from repro.structures.hashtable import OpenAddressingTable


@dataclass
class SVDModel:
    """Truncated SVD of an ``N x M`` matrix: ``X ~ U diag(L) V^t``.

    Attributes:
        u: the N x k row-to-pattern similarity matrix.
        eigenvalues: the k singular values, decreasing.
        v: the M x k column-to-pattern similarity matrix.
    """

    u: np.ndarray
    eigenvalues: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        self.u = np.asarray(self.u, dtype=np.float64)
        self.eigenvalues = np.asarray(self.eigenvalues, dtype=np.float64)
        self.v = np.asarray(self.v, dtype=np.float64)
        if self.u.ndim != 2 or self.v.ndim != 2 or self.eigenvalues.ndim != 1:
            raise ShapeError("U and V must be 2-d, eigenvalues 1-d")
        k = self.eigenvalues.shape[0]
        if self.u.shape[1] != k or self.v.shape[1] != k:
            raise ShapeError(
                f"inconsistent cutoff: U has {self.u.shape[1]} cols, "
                f"V has {self.v.shape[1]}, eigenvalues has {k}"
            )
        if np.any(np.diff(self.eigenvalues) > 1e-9 * max(1.0, abs(float(self.eigenvalues[0])) if k else 1.0)):
            raise ShapeError("eigenvalues must be sorted in decreasing order")

    @property
    def num_rows(self) -> int:
        """N — rows of the original matrix."""
        return int(self.u.shape[0])

    @property
    def num_cols(self) -> int:
        """M — columns of the original matrix."""
        return int(self.v.shape[0])

    @property
    def cutoff(self) -> int:
        """k — number of retained principal components."""
        return int(self.eigenvalues.shape[0])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    def _check_cell(self, row: int, col: int) -> None:
        if not 0 <= row < self.num_rows:
            raise QueryError(f"row {row} out of range [0, {self.num_rows})")
        if not 0 <= col < self.num_cols:
            raise QueryError(f"col {col} out of range [0, {self.num_cols})")

    def reconstruct_cell(self, row: int, col: int) -> float:
        """Eq. 12: ``sum_m lambda_m * u[i,m] * v[j,m]`` — O(k) time."""
        self._check_cell(row, col)
        return float(np.dot(self.u[row] * self.eigenvalues, self.v[col]))

    def reconstruct_row(self, row: int) -> np.ndarray:
        """Reconstruct one full row (one customer's sequence)."""
        if not 0 <= row < self.num_rows:
            raise QueryError(f"row {row} out of range [0, {self.num_rows})")
        return (self.u[row] * self.eigenvalues) @ self.v.T

    def reconstruct_column(self, col: int) -> np.ndarray:
        """Reconstruct one full column (all customers on one day)."""
        if not 0 <= col < self.num_cols:
            raise QueryError(f"col {col} out of range [0, {self.num_cols})")
        return self.u @ (self.eigenvalues * self.v[col])

    def _check_selection(self, row_idx: np.ndarray, col_idx: np.ndarray) -> None:
        if row_idx.size == 0 or col_idx.size == 0:
            raise QueryError("selection must be non-empty")
        if row_idx.min() < 0 or row_idx.max() >= self.num_rows:
            raise QueryError(f"row selection outside [0, {self.num_rows})")
        if col_idx.min() < 0 or col_idx.max() >= self.num_cols:
            raise QueryError(f"col selection outside [0, {self.num_cols})")

    def reconstruct_range(self, rows, cols) -> np.ndarray:
        """Reconstruct the submatrix ``rows x cols`` in one GEMM."""
        row_idx = np.asarray(list(rows), dtype=np.int64)
        col_idx = np.asarray(list(cols), dtype=np.int64)
        self._check_selection(row_idx, col_idx)
        return (self.u[row_idx] * self.eigenvalues) @ self.v[col_idx].T

    def reconstruct_cells(self, rows, cols) -> np.ndarray:
        """Reconstruct the cells ``(rows[i], cols[i])`` in one einsum."""
        row_idx = np.asarray(rows, dtype=np.int64).ravel()
        col_idx = np.asarray(cols, dtype=np.int64).ravel()
        if row_idx.shape != col_idx.shape:
            raise QueryError(
                f"rows and cols must align, got {row_idx.size} vs {col_idx.size}"
            )
        if row_idx.size == 0:
            return np.empty(0)
        self._check_selection(row_idx, col_idx)
        return np.einsum(
            "ik,ik->i", self.u[row_idx] * self.eigenvalues, self.v[col_idx]
        )

    def reconstruct(self) -> np.ndarray:
        """Materialize the full rank-k approximation (Eq. 8)."""
        return (self.u * self.eigenvalues) @ self.v.T

    def space_bytes(self, bytes_per_value: int = space.BYTES_PER_VALUE) -> int:
        """Model size per the paper's Eq. 9 accounting."""
        return space.svd_space_bytes(
            self.num_rows, self.num_cols, self.cutoff, bytes_per_value
        )

    def space_fraction(self, bytes_per_value: int = space.BYTES_PER_VALUE) -> float:
        """Compressed/uncompressed ratio ``s``."""
        return space.svd_space_fraction(
            self.num_rows, self.num_cols, self.cutoff, bytes_per_value
        )

    def truncate(self, k: int) -> "SVDModel":
        """A new model keeping only the first ``k`` principal components."""
        if not 0 <= k <= self.cutoff:
            raise ConfigurationError(
                f"k must be in [0, {self.cutoff}], got {k}"
            )
        return SVDModel(
            self.u[:, :k].copy(), self.eigenvalues[:k].copy(), self.v[:, :k].copy()
        )

    def project_rows(self, dimensions: int = 2) -> np.ndarray:
        """Coordinates of each row in SVD space (Observation 3.4, Appendix A).

        Row ``i`` maps to the first ``dimensions`` entries of
        ``u[i] * eigenvalues`` — the scatter-plot coordinates of Fig. 11.
        """
        if not 1 <= dimensions <= self.cutoff:
            raise ConfigurationError(
                f"dimensions must be in [1, {self.cutoff}], got {dimensions}"
            )
        return self.u[:, :dimensions] * self.eigenvalues[:dimensions]


def cell_key(row: int, col: int, num_cols: int) -> int:
    """The paper's delta-table key: row-major cell ordinal ``row*M + col``."""
    return row * num_cols + col


@dataclass
class SVDDModel:
    """SVD with Deltas: the paper's proposed method (Section 4.2).

    Attributes:
        svd: the truncated SVD kept after the k_opt decision.
        deltas: hash table mapping cell key -> (actual - reconstructed).
        bloom: optional Bloom filter predicting non-outliers; when
            present, reconstruction probes the hash table only for keys
            the filter admits.
        k_max: the pass-1 upper cutoff considered.
        candidate_errors: the epsilon_k curve from pass 2 (sum of squared
            errors after delta correction for each candidate k, index 0
            holding k=1); kept for diagnostics and the k_opt ablation.
    """

    svd: SVDModel
    deltas: OpenAddressingTable
    bloom: BloomFilter | None = None
    k_max: int = 0
    candidate_errors: np.ndarray | None = field(default=None, repr=False)
    #: Probe-accounting counters (reconstruction-time observability).
    stats: dict = field(default_factory=lambda: {"bloom_skips": 0, "table_probes": 0})

    @property
    def num_rows(self) -> int:
        return self.svd.num_rows

    @property
    def num_cols(self) -> int:
        return self.svd.num_cols

    @property
    def shape(self) -> tuple[int, int]:
        return self.svd.shape

    @property
    def cutoff(self) -> int:
        """k_opt — the chosen number of principal components."""
        return self.svd.cutoff

    @property
    def num_deltas(self) -> int:
        """Number of outlier cells stored exactly."""
        return len(self.deltas)

    def _delta_for(self, row: int, col: int) -> float:
        key = cell_key(row, col, self.num_cols)
        if self.bloom is not None and key not in self.bloom:
            self.stats["bloom_skips"] += 1
            return 0.0
        self.stats["table_probes"] += 1
        return self.deltas.get(key, 0.0)

    @property
    def delta_index(self) -> DeltaIndex:
        """Sorted-array view of the delta table for vectorized queries.

        Built lazily from the hash table and memoized; rebuilt if the
        table's size changes (the off-line update path replaces models
        wholesale, so size is a sufficient staleness signal).
        """
        cached = getattr(self, "_delta_index_cache", None)
        if cached is None or cached[0] != len(self.deltas):
            index = DeltaIndex.from_items(self.deltas.items(), self.num_cols)
            object.__setattr__(self, "_delta_index_cache", (len(self.deltas), index))
            return index
        return cached[1]

    def reconstruct_cell(self, row: int, col: int) -> float:
        """SVD estimate plus exact delta correction for outliers."""
        base = self.svd.reconstruct_cell(row, col)
        return base + self._delta_for(row, col)

    def reconstruct_row(self, row: int) -> np.ndarray:
        """Reconstruct one row, applying any stored delta corrections.

        The row's corrections come from one bisection of the sorted
        delta index instead of M per-cell probes.
        """
        out = self.svd.reconstruct_row(row)
        delta_cols, delta_values = self.delta_index.for_row(row)
        out[delta_cols] += delta_values
        return out

    def reconstruct_range(self, rows, cols) -> np.ndarray:
        """Reconstruct the submatrix ``rows x cols``, deltas folded in."""
        out = self.svd.reconstruct_range(rows, cols)
        index = self.delta_index
        if len(index) > 0:
            row_pos, col_pos, _r, _c, values = index.select(
                np.asarray(list(rows), dtype=np.int64),
                np.asarray(list(cols), dtype=np.int64),
            )
            out[row_pos, col_pos] += values
        return out

    def reconstruct_cells(self, rows, cols) -> np.ndarray:
        """Reconstruct the cells ``(rows[i], cols[i])``, deltas folded in."""
        out = self.svd.reconstruct_cells(rows, cols)
        index = self.delta_index
        if len(index) > 0 and out.size > 0:
            keys = (
                np.asarray(rows, dtype=np.int64).ravel() * self.num_cols
                + np.asarray(cols, dtype=np.int64).ravel()
            )
            out = out + index.lookup(keys)
        return out

    def reconstruct(self) -> np.ndarray:
        """Materialize the delta-corrected approximation."""
        out = self.svd.reconstruct()
        index = self.delta_index
        if len(index) > 0:
            out[index.rows, index.cols] += index.values
        return out

    def space_bytes(self, bytes_per_value: int = space.BYTES_PER_VALUE) -> int:
        """SVD part (Eq. 9) plus the delta records."""
        return space.svdd_space_bytes(
            self.num_rows, self.num_cols, self.cutoff, self.num_deltas, bytes_per_value
        )

    def space_fraction(self, bytes_per_value: int = space.BYTES_PER_VALUE) -> float:
        """Compressed/uncompressed ratio ``s`` including the deltas."""
        return self.space_bytes(bytes_per_value) / space.uncompressed_bytes(
            self.num_rows, self.num_cols, bytes_per_value
        )

    def worst_case_bound(self) -> float:
        """A certified bound on any cell's reconstruction error.

        Stored outlier cells reconstruct exactly; every other cell's
        error was, at construction time, no larger than the smallest
        error among the stored outliers (they were chosen as the gamma
        *largest*).  The bound is therefore ``min |delta|`` over the
        table — infinity when no deltas are stored (plain-SVD regime),
        zero when every cell is stored.

        This is the mechanism behind the paper's Table 3/4 observation
        that SVDD 'bounds the worst error pretty well', exposed as a
        queryable guarantee.
        """
        if len(self.deltas) == 0:
            return float("inf")
        if len(self.deltas) >= self.num_rows * self.num_cols:
            return 0.0
        return min(abs(delta) for _key, delta in self.deltas.items())

    def outlier_cells(self) -> list[tuple[int, int, float]]:
        """The stored ``(row, col, delta)`` triplets, sorted by cell key."""
        cols = self.num_cols
        return sorted(
            (key // cols, key % cols, delta) for key, delta in self.deltas.items()
        )
