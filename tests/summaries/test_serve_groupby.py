"""The summary store at the serving tier: /groupby, brownout, counters.

A dashboard group-by over a summarized model must be answered without
touching ``u.mat`` (the whole point of materializing rollups), and a
brownout must prefer an exact summary answer over an SVD-only
approximation — including min/max, which the factor fallback alone
refuses to serve.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core import CompressedMatrix, build_compressed
from repro.exceptions import OverloadedError, QueryError
from repro.query import bucket_series
from repro.query.parser import parse_query
from repro.serve.config import ServeConfig
from repro.serve.robust import RobustDispatcher
from repro.serve.server import QueryServer


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    rng = np.random.default_rng(11)
    data = rng.random((160, 70)) * 10
    data[3, 7] += 200.0
    directory = tmp_path_factory.mktemp("serve") / "model"
    build_compressed(data, directory, budget_fraction=0.20).close()
    return directory


@pytest.fixture(scope="module")
def exact(model_dir):
    with CompressedMatrix.open(model_dir) as store:
        rows, cols = store.shape
        return store.reconstruct_range(np.arange(rows), np.arange(cols))


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read())


class TestBucketSeries:
    def test_summary_hit_reads_no_u_pages(self, model_dir, exact):
        with CompressedMatrix.open(model_dir) as saved:
            saved.u_pool_stats.reset()
            series = bucket_series(saved, "month", "sum")
            assert series["path"] == "summary"
            assert saved.u_pool_stats.accesses == 0  # zero u.mat pages
            edges = series["edges"]
            for i, value in enumerate(series["values"]):
                assert value == pytest.approx(
                    exact[:, edges[i] : edges[i + 1]].sum(), rel=1e-9
                )

    def test_stream_path_on_plain_backend(self, exact):
        series = bucket_series(exact, "week", "max")
        assert series["path"] == "stream" and not series["partial"]
        edges = series["edges"]
        for i, value in enumerate(series["values"]):
            assert value == exact[:, edges[i] : edges[i + 1]].max()

    def test_customer_limit_orders_by_value(self, model_dir, exact):
        with CompressedMatrix.open(model_dir) as saved:
            series = bucket_series(saved, "customer", "sum", limit=4)
            assert series["buckets"] == 4
            expected = np.argsort(exact.sum(axis=1))[::-1][:4]
            assert series["labels"] == [int(i) for i in expected]

    def test_time_limit_keeps_most_recent(self, model_dir):
        with CompressedMatrix.open(model_dir) as saved:
            full = bucket_series(saved, "week", "sum")
            tail = bucket_series(saved, "week", "sum", limit=3)
            assert tail["values"] == full["values"][-3:]
            assert tail["edges"] == full["edges"][-4:]

    def test_bad_axis_and_limit_rejected(self, model_dir):
        with CompressedMatrix.open(model_dir) as saved:
            with pytest.raises(QueryError):
                bucket_series(saved, "fortnight", "sum")
            with pytest.raises(QueryError):
                bucket_series(saved, "day", "sum", limit=0)


class TestGroupbyEndpoint:
    def test_groupby_route_and_counters(self, model_dir, exact):
        config = ServeConfig(port=0, workers=1)
        with QueryServer(model_dir, config) as server:
            payload = _get(f"{server.url}/groupby?by=month&fn=sum")
            assert payload["path"] == "summary"
            assert payload["degraded"] is False
            edges = payload["edges"]
            assert payload["values"][0] == pytest.approx(
                exact[:, edges[0] : edges[1]].sum(), rel=1e-9
            )
            top = _get(f"{server.url}/groupby?by=customer&fn=max&limit=2")
            assert top["buckets"] == 2
            stats = _get(f"{server.url}/stats")
            assert stats["summary_hits"] == 2
            assert stats["summary_misses"] == 0
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/groupby?by=hour")
            assert excinfo.value.code == 400
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/groupby?limit=abc")
            assert excinfo.value.code == 400


class TestBrownoutSummaries:
    def test_min_max_served_exactly_in_brownout(self, model_dir, exact):
        dispatcher = RobustDispatcher(model_dir, ServeConfig(port=0, workers=1))
        try:
            dispatcher.model_degraded = True  # force brownout
            assert dispatcher.brownout_active()
            payload = dispatcher.dispatch(parse_query("max()"))
            # Exact from the rollups: NOT stamped degraded.
            assert payload["degraded"] is False
            assert payload["value"] == float(exact.max())
            assert dispatcher.summary_brownout_hits == 1
            # Covered sum also prefers the summary over SVD-only.
            payload = dispatcher.dispatch(parse_query("sum()"))
            assert payload["degraded"] is False
            assert payload["value"] == pytest.approx(exact.sum(), rel=1e-9)
        finally:
            dispatcher.close()

    def test_uncovered_min_max_still_sheds(self, model_dir):
        dispatcher = RobustDispatcher(model_dir, ServeConfig(port=0, workers=1))
        try:
            dispatcher.model_degraded = True
            with pytest.raises(OverloadedError):
                dispatcher.dispatch(parse_query("max() rows 0:10 cols 0:10"))
        finally:
            dispatcher.close()

    def test_groupby_shed_while_draining(self, model_dir):
        dispatcher = RobustDispatcher(model_dir, ServeConfig(port=0, workers=1))
        try:
            dispatcher._draining = True
            with pytest.raises(OverloadedError):
                dispatcher.groupby("day", "sum")
        finally:
            dispatcher.close()
