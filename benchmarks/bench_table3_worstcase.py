"""Table 3 / Figure 7: worst-case single-cell error vs storage space
('phone2000'), for plain SVD vs SVDD, in absolute and normalized terms.

Expected shape: SVD's worst case is of the order of the data's whole
range (hundreds of percent of a standard deviation) even at generous
budgets, while SVDD bounds it to a few percent and improves steadily
with space.
"""

from __future__ import annotations

from benchmarks.conftest import emit, format_table
from repro.core import SVDCompressor, SVDDCompressor
from repro.metrics import worst_case_error

BUDGETS = (0.05, 0.10, 0.15, 0.20, 0.25)


def test_table3_worst_case(phone2000, benchmark):
    rows = []
    ratios = []
    for budget in BUDGETS:
        svd = SVDCompressor(budget_fraction=budget).fit(phone2000)
        svdd = SVDDCompressor(budget_fraction=budget).fit(phone2000)
        svd_abs, svd_norm = worst_case_error(phone2000, svd.reconstruct())
        svdd_abs, svdd_norm = worst_case_error(phone2000, svdd.reconstruct())
        ratios.append(svd_norm / max(svdd_norm, 1e-12))
        rows.append(
            [
                f"{budget:.0%}",
                f"{svd_abs:.3f}",
                f"{svdd_abs:.3f}",
                f"{svd_norm:.1%}",
                f"{svdd_norm:.2%}",
            ]
        )
    lines = format_table(
        "Table 3: worst-case error vs storage (phone2000)",
        ["space", "SVD abs", "SVDD abs", "SVD norm", "SVDD norm"],
        rows,
    )
    emit("table3_worstcase", lines)

    # The phenomenon the table demonstrates: SVDD bounds the worst case
    # far better than plain SVD at every budget.
    assert all(ratio > 3 for ratio in ratios)

    benchmark(
        lambda: worst_case_error(
            phone2000, SVDCompressor(budget_fraction=0.10).fit(phone2000).reconstruct()
        )
    )
