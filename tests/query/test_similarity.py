"""Tests for similarity search in SVD space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVDCompressor, SVDDCompressor
from repro.data.documents import DocumentsConfig, document_topics, documents_matrix
from repro.exceptions import ConfigurationError, QueryError
from repro.query.similarity import (
    distance_distortion,
    factor_distances,
    similar_rows,
    similar_to_vector,
)


@pytest.fixture(scope="module")
def documents():
    return documents_matrix(300)


@pytest.fixture(scope="module")
def topics():
    return document_topics(300)


@pytest.fixture(scope="module")
def model(documents):
    return SVDCompressor(k=8).fit(documents)


class TestFactorDistances:
    def test_self_distance_zero(self, model):
        assert factor_distances(model, 5)[5] == pytest.approx(0.0)

    def test_full_rank_distances_exact(self, rng):
        x = rng.standard_normal((40, 10))
        full = SVDCompressor(k=10).fit(x)
        true = np.linalg.norm(x[3] - x[17])
        assert factor_distances(full, 3)[17] == pytest.approx(true, rel=1e-8)

    def test_bounds(self, model):
        with pytest.raises(QueryError):
            factor_distances(model, 300)


class TestSimilarRows:
    def test_excludes_self(self, model):
        assert 7 not in similar_rows(model, 7, count=10)

    def test_neighbors_share_the_query_topic(self, model, topics):
        """LSI's promise: factor-space neighbors are topically alike."""
        hits = 0
        trials = 30
        for row in range(trials):
            neighbors = similar_rows(model, row, count=5)
            same = sum(1 for n in neighbors if topics[n] == topics[row])
            hits += same
        # Random chance with 6 topics would be ~1/6; require far better.
        assert hits / (trials * 5) > 0.5

    def test_count_clamped(self, model):
        assert similar_rows(model, 0, count=10_000).shape[0] == 299

    def test_sorted_by_distance(self, model):
        neighbors = similar_rows(model, 3, count=8)
        distances = factor_distances(model, 3)[neighbors]
        assert np.all(np.diff(distances) >= -1e-12)

    def test_invalid_count(self, model):
        with pytest.raises(ConfigurationError):
            similar_rows(model, 0, count=0)

    def test_works_on_svdd(self, documents):
        svdd = SVDDCompressor(budget_fraction=0.2).fit(documents)
        assert similar_rows(svdd, 0, count=3).shape == (3,)


class TestQueryFolding:
    def test_document_finds_itself(self, model, documents):
        """Folding a row's own vector must rank that row first."""
        found = similar_to_vector(model, documents[42], count=1)
        assert found[0] == 42

    def test_topic_probe_finds_topic_documents(self, model, documents, topics):
        """A synthetic query made of topic-0 documents retrieves topic 0."""
        topic0 = documents[topics == 0]
        probe = topic0.mean(axis=0)
        found = similar_to_vector(model, probe, count=10)
        same = sum(1 for idx in found if topics[idx] == 0)
        assert same >= 7

    def test_shape_validated(self, model):
        with pytest.raises(QueryError):
            similar_to_vector(model, np.ones(3))


class TestDistortion:
    def test_full_rank_distortion_zero(self, rng):
        x = rng.standard_normal((50, 12))
        full = SVDCompressor(k=12).fit(x)
        assert distance_distortion(full, x) < 1e-9

    def test_truncation_distorts_moderately(self, model, documents):
        """'Preserving distances well': median relative error stays small
        even at k=8 of 200 dimensions."""
        assert distance_distortion(model, documents) < 0.35

    def test_distortion_decreases_with_k(self, documents):
        errors = [
            distance_distortion(SVDCompressor(k=k).fit(documents), documents)
            for k in (2, 8, 32)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_shape_mismatch(self, model):
        with pytest.raises(QueryError):
            distance_distortion(model, np.ones((5, 5)))
