"""CSV import/export for the matrix store.

The adoption path for real warehouses: data usually arrives as
delimited text, one customer per line.  Both directions stream — the
matrix never has to fit in memory.
"""

from __future__ import annotations

import csv
import os
from typing import Iterator

import numpy as np

from repro.exceptions import DatasetError
from repro.storage.matrix_store import MatrixStore
from repro.storage.pager import PAGE_SIZE_DEFAULT


def _rows_from_csv(
    path: str | os.PathLike,
    delimiter: str,
    skip_header: bool,
    expected_cols: list[int],
) -> Iterator[np.ndarray]:
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for line_no, record in enumerate(reader, start=1):
            if skip_header and line_no == 1:
                continue
            if not record:
                continue
            try:
                row = np.array([float(field) for field in record])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_no}: non-numeric field ({exc})"
                ) from exc
            if not expected_cols:
                expected_cols.append(row.shape[0])
            elif row.shape[0] != expected_cols[0]:
                raise DatasetError(
                    f"{path}:{line_no}: expected {expected_cols[0]} fields, "
                    f"got {row.shape[0]}"
                )
            yield row


def matrix_store_from_csv(
    csv_path: str | os.PathLike,
    store_path: str | os.PathLike,
    delimiter: str = ",",
    skip_header: bool = False,
    page_size: int = PAGE_SIZE_DEFAULT,
) -> MatrixStore:
    """Stream a CSV of numeric rows into a new :class:`MatrixStore`.

    All rows must have the same number of fields; a ragged or
    non-numeric line raises :class:`DatasetError` naming the line.
    """
    expected_cols: list[int] = []
    rows = _rows_from_csv(csv_path, delimiter, skip_header, expected_cols)
    # Peek the first row to learn the width, then chain it back on.
    try:
        first = next(rows)
    except StopIteration:
        raise DatasetError(f"{csv_path}: no data rows") from None

    def chained() -> Iterator[np.ndarray]:
        yield first
        yield from rows

    return MatrixStore.create_from_rows(
        store_path, chained(), num_cols=first.shape[0], page_size=page_size
    )


def matrix_store_to_csv(
    store: MatrixStore,
    csv_path: str | os.PathLike,
    delimiter: str = ",",
    header: list[str] | None = None,
    fmt: str = "%.12g",
) -> int:
    """Stream a store out to CSV; returns the number of data rows written."""
    if header is not None and len(header) != store.num_cols:
        raise DatasetError(
            f"header has {len(header)} names for {store.num_cols} columns"
        )
    count = 0
    with open(csv_path, "w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header is not None:
            writer.writerow(header)
        for _index, row in store.iter_rows():
            writer.writerow([fmt % value for value in row])
            count += 1
    return count
