"""Figure 11 (Appendix A): scatter plots of the datasets in 2-d SVD space.

Renders the 'phone2000' and 'stocks' projections as ASCII scatter plots
and reports the outliers a data analyst would flag.  Expected shape:
phone points concentrate near the origin with a few huge-volume
exceptions (Zipf skew); stocks points hug the first (market) axis.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit
from repro.viz import ascii_scatter, outlier_rows, scatter_coordinates


def test_fig11_phone_scatter(phone2000, benchmark):
    coords = scatter_coordinates(phone2000, dimensions=2)
    outliers = outlier_rows(coords)
    lines = [
        "Figure 11 (left): phone2000 in 2-d SVD space",
        "",
        ascii_scatter(coords, width=72, height=20),
        "",
        f"outlier customers (analyst 'distractions'): {outliers.tolist()[:20]}",
    ]
    # Zipf skew: most customers near the origin, a few far out.
    radius = np.sqrt((coords**2).sum(axis=1))
    lines.append(
        f"median radius {np.median(radius):.1f} vs max {radius.max():.1f} "
        f"(ratio {radius.max() / max(np.median(radius), 1e-9):.0f}x)"
    )
    emit("fig11_phone_scatter", lines)

    assert radius.max() / max(float(np.median(radius)), 1e-9) > 10

    benchmark(lambda: scatter_coordinates(phone2000, dimensions=2))


def test_fig11_stocks_scatter(stocks381, benchmark):
    coords = scatter_coordinates(stocks381, dimensions=2)
    lines = [
        "Figure 11 (right): stocks in 2-d SVD space",
        "",
        ascii_scatter(coords, width=72, height=20),
    ]
    # Points hug the first (market) axis.
    energy_ratio = float((coords[:, 0] ** 2).sum() / (coords[:, 1] ** 2).sum())
    lines.append(f"PC1/PC2 energy ratio: {energy_ratio:.0f}x (points hug PC1)")
    emit("fig11_stocks_scatter", lines)

    assert energy_ratio > 10

    benchmark(lambda: scatter_coordinates(stocks381, dimensions=2))
