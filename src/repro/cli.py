"""Command-line interface: ``python -m repro <command>``.

Gives the library the operational surface a deployed system would have:

- ``build``   — compress an on-disk matrix (or a named dataset) into a
  CompressedMatrix directory;
- ``info``    — inspect a compressed model (shape, k, deltas, space,
  append/drift state);
- ``append``  — fold new days (``--cols``) or customers (``--rows``)
  into an existing model crash-atomically, without a rebuild
  (``--defer-summaries`` postpones the rollup refresh);
- ``summarize`` — materialize or refresh a model's summary store (the
  persisted time-hierarchy rollups behind ``path=summary`` answers and
  ``/groupby``); ``--all`` walks a warehouse catalog;
- ``cell``    — reconstruct one cell, reporting the disk accesses used;
- ``aggregate`` — run an aggregate query over row/column ranges;
- ``query``   — run a textual query ('avg() rows 0:100 cols 7:14');
- ``batch``   — run a file of queries through a concurrent executor
  (``--mode sequential|thread|process``; process mode serves from
  worker processes sharing the model through mmap);
- ``stats``   — run a random-cell workload with telemetry enabled and
  dump the metrics registry (pool/pager counters, span timings) as JSON;
- ``serve``   — serve a model over HTTP (``/query``, ``/cell``,
  ``/aggregate``, ``/groupby``, ``/explain``, ``/stats``, ``/healthz``
  live/ready, ``/metrics``) on the multiprocess executor, with bounded admission,
  load shedding (503 + Retry-After), per-request deadlines, brownout
  degradation, and graceful SIGTERM drain;
- ``serve-metrics`` — expose the live registry over HTTP (``/metrics``
  OpenMetrics text for Prometheus, ``/healthz``, ``/snapshot`` JSON),
  optionally exercising a model and writing rotating JSONL snapshots;
- ``top``     — live terminal monitor polling a ``serve-metrics``
  endpoint: qps, pool hit rate, per-route latency quantiles, workers;
- ``fsck``    — verify a model directory against its integrity manifest
  (full SHA-256 by default, ``--quick`` for sizes only) and confirm the
  model actually opens;
- ``verify``  — audit a model against its source data;
- ``scatter`` — render the Appendix A scatter plot for a dataset;
- ``datasets`` — list the built-in synthetic datasets;
- ``wh-ingest`` / ``wh-list`` / ``wh-verify`` / ``wh-drop`` — manage a
  multi-dataset warehouse catalog.

The query commands take ``--explain`` (print the engine's plan as JSON
instead of executing) and ``--profile`` (execute with telemetry enabled
and print the per-query :class:`~repro.obs.profile.QueryProfile` as
JSON).

Examples::

    python -m repro build --dataset phone2000 --budget 0.10 --out model/
    python -m repro info model/
    python -m repro cell model/ 1234 200
    python -m repro aggregate model/ --function avg --rows 0:100 --cols 7:14
    python -m repro aggregate model/ --rows 0:100 --explain
    python -m repro aggregate model/ --rows 0:100 --profile
    python -m repro stats model/ --queries 500
    python -m repro scatter stocks
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from repro.core import CompressedMatrix, SVDDCompressor
from repro.data import load_dataset
from repro.exceptions import ReproError
from repro.obs import registry
from repro.query import AggregateQuery, CellQuery, QueryEngine, Selection
from repro.query.parser import parse_query
from repro.storage import MatrixStore
from repro.viz import ascii_scatter, outlier_rows, scatter_coordinates


def _parse_range(text: str, extent: int) -> range:
    """Parse 'a:b' / 'a' / ':' into a range within [0, extent)."""
    if text == ":":
        return range(extent)
    if ":" in text:
        start_text, stop_text = text.split(":", 1)
        start = int(start_text) if start_text else 0
        stop = int(stop_text) if stop_text else extent
        return range(start, stop)
    index = int(text)
    return range(index, index + 1)


def _load_matrix(args) -> np.ndarray | MatrixStore:
    if args.dataset:
        return load_dataset(args.dataset).matrix
    return MatrixStore.open(args.input)


def cmd_build(args) -> int:
    """Handle ``repro build``: compress a source into a model directory.

    Uses the constant-memory pipeline (U streamed to disk), so building
    from an on-disk store never allocates O(N) memory.
    """
    from repro.core import build_compressed

    source = _load_matrix(args)
    store = build_compressed(
        source, args.out, budget_fraction=args.budget, jobs=args.jobs
    )
    rows, cols = store.shape
    fraction = store.space_bytes() / (rows * cols * 8)
    print(
        f"built {args.out}: shape {store.shape}, k={store.cutoff}, "
        f"{store.num_deltas} deltas, {store.num_zero_rows} zero rows, "
        f"{fraction:.2%} of original space"
    )
    store.close()
    if isinstance(source, MatrixStore):
        source.close()
    return 0


def cmd_info(args) -> int:
    """Handle ``repro info``: print a model's catalog facts."""
    from repro.exceptions import FormatError
    from repro.core.update import load_update_state

    with CompressedMatrix.open(args.model) as store:
        rows, cols = store.shape
        print(f"model: {Path(args.model).resolve()}")
        print(f"  matrix: {rows} x {cols}")
        print(f"  principal components (k): {store.cutoff}")
        print(f"  outlier deltas: {store.num_deltas}")
        print(f"  flagged zero rows: {store.num_zero_rows}")
        print(f"  model bytes (Eq. 9 accounting): {store.space_bytes()}")
        print(f"  space fraction: {store.space_bytes() / (rows * cols * 8):.2%}")
    try:
        state = load_update_state(args.model)
    except FormatError:
        print("  incremental updates: unavailable (no update state)")
        return 0
    print(
        f"  appends: {state.get('appends', 0)} "
        f"(+{state.get('rows_appended', 0)} rows, "
        f"+{state.get('cols_appended', 0)} cols)"
    )
    print(
        f"  drift: {state.get('drift', 0.0):.4f} "
        f"(threshold {state.get('drift_threshold', 0.0):.2f}, "
        f"rebuild recommended: {state.get('rebuild_recommended', False)})"
    )
    _print_summary_state(args.model)
    return 0


def _print_summary_state(model_dir) -> None:
    """One ``repro info`` line on the summary store's staleness."""
    from repro.summaries import SummaryStore

    store = SummaryStore.load(model_dir)
    if store is None:
        print(
            "  summaries: absent or stale generation "
            "(run `repro summarize` to materialize)"
        )
        return
    if store.fresh:
        print(
            f"  summaries: fresh ({store.covered_rows} x "
            f"{store.covered_cols} covered)"
        )
        return
    print(
        f"  summaries: lagging — covers {store.covered_rows} x "
        f"{store.covered_cols} of {store.model_rows} x {store.model_cols} "
        "(deferred append; run `repro summarize` to catch up)"
    )


def cmd_append(args) -> int:
    """Handle ``repro append``: fold new days/customers into a model.

    Exactly one of ``--cols``/``--rows`` names a ``.npy`` array: new
    columns are ``(N, d)`` (one value per existing customer per new
    day), new rows are ``(n, M)`` (one full history per new customer).
    The append is crash-atomic; readers holding the model open keep
    their pre-append snapshot until they reopen.
    """
    from repro.core.update import append_columns, append_rows

    refresh = not getattr(args, "defer_summaries", False)
    if args.cols:
        payload = np.load(args.cols)
        result = append_columns(args.model, payload, refresh_summaries=refresh)
    else:
        payload = np.load(args.rows)
        result = append_rows(args.model, payload, refresh_summaries=refresh)
    print(
        f"appended {result.appended} {result.kind} to {args.model}: now "
        f"{result.rows} x {result.cols}, {result.num_deltas} deltas "
        f"({result.seconds:.2f}s)"
    )
    print(
        f"drift: {result.drift:.4f}  "
        f"rebuild recommended: {result.rebuild_recommended}"
    )
    if not refresh:
        print(
            "summaries: refresh deferred "
            "(run `repro summarize` to catch up)"
        )
    return 0


def cmd_summarize(args) -> int:
    """Handle ``repro summarize``: bring summary stores up to date.

    Default target is one model directory; ``--all`` treats the target
    as a warehouse root and walks every catalogued model.  The refresh
    is crash-atomic (staged swap) and incremental where the existing
    store covers part of the model; ``--rebuild`` forces a cold
    recompute.
    """
    from repro.summaries import summarize_directory

    if getattr(args, "all_models", False):
        from repro.warehouse import Warehouse

        warehouse = Warehouse(args.target)
        targets = [
            (name, Path(args.target) / name) for name in warehouse.names()
        ]
        if not targets:
            print("(empty warehouse)")
            return 0
    else:
        targets = [(None, Path(args.target))]
    for name, directory in targets:
        report = summarize_directory(
            directory, rebuild=args.rebuild, start_date=args.start_date
        )
        label = f"{name}: " if name else ""
        state = report["state"]
        print(
            f"{label}{report['status']} — covers "
            f"{state['covered_rows']} x {state['covered_cols']} "
            f"({report['seconds']:.2f}s)"
        )
    return 0


def cmd_cell(args) -> int:
    """Handle ``repro cell``: reconstruct one cell with access accounting."""
    if getattr(args, "profile", False):
        registry.enable()
    with CompressedMatrix.open(args.model) as store:
        store.u_pool_stats.reset()
        if getattr(args, "profile", False):
            result = QueryEngine(store).cell(CellQuery(args.row, args.col))
            print(f"cell ({args.row}, {args.col}) = {result.value:.6g}")
            print(result.profile.to_json())
            return 0
        value = store.cell(args.row, args.col)
        print(f"cell ({args.row}, {args.col}) = {value:.6g}")
        print(f"disk accesses: {store.u_pool_stats.misses}")
    return 0


def cmd_aggregate(args) -> int:
    """Handle ``repro aggregate``: run one aggregate over ranges."""
    if getattr(args, "profile", False):
        registry.enable()
    with CompressedMatrix.open(args.model) as store:
        rows, cols = store.shape
        selection = Selection(
            rows=_parse_range(args.rows, rows), cols=_parse_range(args.cols, cols)
        )
        query = AggregateQuery(
            args.function, selection, max_rmspe=getattr(args, "max_rmspe", None)
        )
        engine = QueryEngine(store)
        if getattr(args, "explain", False):
            print(json.dumps(engine.explain(query), indent=2))
            return 0
        result = engine.aggregate(query)
        print(
            f"{args.function}(rows={args.rows}, cols={args.cols}) = "
            f"{result.value:.6g}  ({result.cells_touched} cells)"
        )
        if result.profile is not None:
            print(result.profile.to_json())
    return 0


def cmd_query(args) -> int:
    """Handle ``repro query``: parse and run a textual query."""
    if getattr(args, "profile", False):
        registry.enable()
    with CompressedMatrix.open(args.model) as store:
        engine = QueryEngine(store)
        query = parse_query(args.text)
        budget = getattr(args, "max_rmspe", None)
        if budget is not None and isinstance(query, AggregateQuery):
            query = dataclasses.replace(query, max_rmspe=budget)
        if getattr(args, "explain", False):
            print(json.dumps(engine.explain(query), indent=2))
            return 0
        if isinstance(query, CellQuery):
            result = engine.cell(query)
        else:
            result = engine.aggregate(query)
        print(f"{args.text.strip()} = {result.value:.6g}")
        print(f"cells touched: {result.cells_touched}")
        if result.profile is not None:
            print(result.profile.to_json())
    return 0


def cmd_batch(args) -> int:
    """Handle ``repro batch``: run many queries through an executor.

    Queries come from ``--file`` (one textual query per line; blank
    lines and ``#`` comments skipped) and/or repeated ``--query`` flags.
    ``--mode`` picks the serving strategy: ``sequential`` (one engine,
    the baseline), ``thread`` (shared-backend thread pool), or
    ``process`` (worker processes sharing ``u.mat`` through mmap — the
    mode that scales past the GIL on multi-core hosts).
    """
    import time

    from repro.query import BatchReport
    from repro.query.executor import batch_throughput, coerce_query

    texts: list[str] = []
    if args.file:
        for line in Path(args.file).read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                texts.append(line)
    texts.extend(args.query or [])
    if not texts:
        print("error: no queries given (use --file and/or --query)", file=sys.stderr)
        return 1
    profile = getattr(args, "profile", False)
    if profile:
        registry.enable()
    if getattr(args, "slow_ms", None) is not None:
        from repro.obs.slowlog import slow_query_log

        registry.enable()
        slow_query_log.configure(args.slow_ms, path=getattr(args, "slow_log", None))

    def _run() -> BatchReport:
        if args.mode == "process":
            from repro.query import ProcessQueryExecutor

            with ProcessQueryExecutor(args.model, max_workers=args.workers) as pool:
                return pool.run_batch(texts, chunksize=args.chunksize)
        if args.mode == "thread":
            from repro.query import QueryExecutor

            backend = CompressedMatrix.open(args.model)
            with QueryExecutor(
                backend, max_workers=args.workers, close_backend=True
            ) as pool:
                return pool.run_batch(texts)
        with CompressedMatrix.open(args.model) as store:
            engine = QueryEngine(store)
            start = time.perf_counter()
            results = [engine.execute(coerce_query(text)) for text in texts]
            wall = time.perf_counter() - start
        return BatchReport(
            results=results,
            queries=len(texts),
            workers=1,
            wall_s=wall,
            throughput_qps=batch_throughput(len(texts), wall),
        )

    if profile:
        # One root span for the whole batch: sequential queries nest
        # under it directly, and process-mode workers' span trees are
        # grafted under it as results are collected — the printed tree
        # spans caller and workers, joined on trace ids.
        from repro.obs.tracing import span as _span, trace as _trace

        with _trace(), _span("batch", mode=args.mode, queries=len(texts)) as root:
            report = _run()
    else:
        report = _run()
    for text, result in zip(texts, report.results):
        print(f"{text} = {result.value:.6g}")
    print(
        f"# {report.queries} queries, {report.workers} worker(s) "
        f"[{args.mode}], {report.wall_s:.3f}s, "
        f"{report.throughput_qps:.1f} qps"
    )
    if profile:
        print(json.dumps(root.to_dict(), indent=2))
    return 0


def cmd_stats(args) -> int:
    """Handle ``repro stats``: profiled random-cell workload + registry dump.

    Runs ``--queries`` single-cell queries over distinct random rows of
    the model with telemetry enabled, then dumps the full metrics
    registry.  With a cold pool this demonstrates the paper's ~1 disk
    access per reconstructed cell directly from the new counters
    (``summary.pool_accesses_per_query``).
    """
    registry.enable()
    rng = np.random.default_rng(args.seed)
    with CompressedMatrix.open(
        args.model, pool_capacity=args.pool_capacity
    ) as store:
        rows, cols = store.shape
        count = min(args.queries, rows)
        # Distinct rows: every query is cold, the paper's worst case.
        row_idx = rng.choice(rows, size=count, replace=False)
        col_idx = rng.integers(cols, size=count)
        engine = QueryEngine(store)
        store.u_pool_stats.reset()
        store.u_io_stats.reset()
        for row, col in zip(row_idx, col_idx):
            engine.cell(CellQuery(int(row), int(col)))
        pool = store.u_pool_stats
        summary = {
            "model": str(Path(args.model).resolve()),
            "queries": count,
            "pool_accesses_per_query": pool.accesses / count if count else 0.0,
            "page_misses_per_query": pool.misses / count if count else 0.0,
            "zero_row_skips": store.stats["zero_row_skips"],
        }
        print(json.dumps({"summary": summary, "registry": registry.snapshot()},
                         indent=2, default=str))
    return 0


def cmd_serve_metrics(args) -> int:
    """Handle ``repro serve-metrics``: HTTP metrics endpoint + snapshots.

    Enables telemetry, starts the embedded
    :class:`~repro.obs.serve.MetricsServer` (``/metrics`` OpenMetrics
    text, ``/healthz`` + ``/healthz/live`` + ``/healthz/ready``,
    ``/snapshot`` JSON), and ticks every ``--interval`` seconds until
    ``--duration`` elapses (forever when omitted).  Each tick
    optionally runs ``--exercise`` random cell queries against
    ``--model`` (so latency histograms and pool counters are live even
    without external traffic) and appends one registry snapshot to the
    rotating JSONL file at ``--snapshots``.  ``--slow-ms`` arms the
    slow-query log, to ``--slow-log`` if given.

    SIGTERM and SIGINT both drain gracefully — the same discipline as
    ``repro serve``: readiness flips to 503 first, in-flight scrapes
    get a bounded grace to finish, and the process exits 0.
    """
    import signal
    import threading
    import time

    from repro.obs.export import MetricsSnapshotWriter
    from repro.obs.serve import MetricsServer

    registry.enable()
    if args.slow_ms is not None:
        from repro.obs.slowlog import slow_query_log

        slow_query_log.configure(args.slow_ms, path=args.slow_log)
    store = engine = None
    rng = np.random.default_rng(args.seed)
    writer = MetricsSnapshotWriter(args.snapshots) if args.snapshots else None
    server = MetricsServer(host=args.host, port=args.port).start()
    stop_event = threading.Event()
    # Handlers only exist on the main thread; embedded runs (tests
    # driving the CLI from a worker thread) rely on --duration instead.
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: stop_event.set())
    try:
        if args.model:
            store = CompressedMatrix.open(args.model)
            engine = QueryEngine(store)
        print(
            f"serving metrics on {server.url}  "
            "(routes: /metrics /healthz /healthz/ready /snapshot)"
        )
        sys.stdout.flush()
        deadline = (
            time.monotonic() + args.duration if args.duration is not None else None
        )
        while not stop_event.is_set():
            if engine is not None and args.exercise:
                rows, cols = store.shape
                for index in range(args.exercise):
                    if index % 8 == 7:
                        row = int(rng.integers(rows))
                        engine.aggregate(
                            AggregateQuery(
                                "avg",
                                Selection(rows=range(row, row + 1), cols=None),
                            )
                        )
                    else:
                        engine.cell(
                            CellQuery(
                                int(rng.integers(rows)), int(rng.integers(cols))
                            )
                        )
            if writer is not None:
                writer.write()
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                stop_event.wait(min(args.interval, remaining))
            else:
                stop_event.wait(args.interval)
    except KeyboardInterrupt:
        pass
    finally:
        # Graceful drain: readiness flips before the listener closes, so
        # an orchestrator's next /healthz/ready probe sees 503 while any
        # in-flight scrape still finishes inside the grace period.
        server.stop()
        if store is not None:
            store.close()
    return 0


def cmd_serve(args) -> int:
    """Handle ``repro serve``: the fault-tolerant query HTTP tier.

    Serves one model directory (or a warehouse dataset via ``--root`` +
    ``--dataset``) over :class:`~repro.serve.server.QueryServer`:
    multiprocess query execution behind bounded admission, per-request
    deadlines, load shedding with ``Retry-After``, brownout (SVD-only)
    degradation, and a breaker over worker crash-loops.  SIGTERM/SIGINT
    drain gracefully and exit 0.
    """
    from repro.serve import QueryServer, ServeConfig

    registry.enable()
    if args.slow_ms is not None:
        from repro.obs.slowlog import slow_query_log

        slow_query_log.configure(args.slow_ms, path=args.slow_log)
    verified_rmspe = None
    if args.model:
        model_dir = Path(args.model)
    else:
        if not args.root or not args.dataset:
            raise ReproError(
                "serve needs a model directory, or --root and --dataset"
            )
        from repro.warehouse import Warehouse

        warehouse = Warehouse(args.root)
        entry = warehouse.entry(args.dataset)
        verified_rmspe = entry.verified_rmspe
        model_dir = Path(args.root) / args.dataset / "model"
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        max_queue_age_ms=args.max_queue_age_ms,
        default_timeout_ms=args.default_timeout_ms,
        max_timeout_ms=args.max_timeout_ms,
        retry_after_s=args.retry_after_s,
        drain_grace_s=args.drain_grace_s,
        breaker_failures=args.breaker_failures,
        breaker_window_s=args.breaker_window_s,
        breaker_cooldown_s=args.breaker_cooldown_s,
        brownout_sheds=args.brownout_sheds,
        brownout_window_s=args.brownout_window_s,
        on_corrupt="degraded" if args.allow_degraded else "raise",
    )
    server = QueryServer(model_dir, config, verified_rmspe=verified_rmspe)
    server.start()
    server.install_signal_handlers()
    print(
        f"serving {model_dir} on {server.url}  "
        "(routes: /query /cell /aggregate /groupby /explain /stats /healthz "
        "/metrics)"
    )
    sys.stdout.flush()
    drained = server.serve_until_shutdown(duration_s=args.duration)
    if not drained:
        print(
            "drain grace expired with requests still in flight",
            file=sys.stderr,
        )
    return 0


def format_top_frame(
    snapshot: dict, prev: dict | None = None, dt: float | None = None
) -> str:
    """Render one ``repro top`` frame from a registry snapshot.

    Pure function of the ``/snapshot`` payloads so tests can exercise
    the rendering without a server: ``prev``/``dt`` (the previous
    snapshot and the seconds between them) turn cumulative query
    counters into a rate; without them the frame shows totals only.
    """

    def _counter(snap: dict | None, name: str) -> float:
        return float((snap or {}).get("counters", {}).get(name, 0))

    def _queries(snap: dict | None) -> float:
        """Total queries served, from whichever source is counting.

        Executor counters cover pooled serving; the span histogram
        counts cover direct engine traffic (e.g. serve-metrics
        --exercise).  Thread-pool traffic increments both, so take the
        max rather than the sum.
        """
        executors = _counter(snap, "executor.queries") + _counter(
            snap, "executor.proc.queries"
        )
        histograms = (snap or {}).get("histograms", {}) or {}
        spans = sum(
            float(histograms.get(name, {}).get("count", 0))
            for name in ("span.query.cell", "span.query.aggregate")
        )
        return max(executors, spans)

    queries = _queries(snapshot)
    if prev is not None and dt and dt > 0:
        qps = f"{max(0.0, queries - _queries(prev)) / dt:8.1f} qps"
    else:
        qps = f"{int(queries):8d} queries total"

    pools = snapshot.get("pools", {}) or {}
    hits = sum(float(stats.get("hits", 0)) for stats in pools.values())
    misses = sum(float(stats.get("misses", 0)) for stats in pools.values())
    accesses = hits + misses
    hit_rate = f"{hits / accesses:6.1%}" if accesses else "   n/a"

    slow = int(_counter(snapshot, "slowlog.records"))

    lines = [
        f"queries {qps}   pool hit-rate {hit_rate}   slow {slow}",
        f"{'route':<28} {'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'count':>9}",
    ]
    histograms = snapshot.get("histograms", {}) or {}
    routes = sorted(
        name for name in histograms if name.startswith("span.query")
    )
    for name in routes:
        summary = histograms[name]
        cells = []
        for key in ("p50", "p95", "p99"):
            value = summary.get(key)
            cells.append(f"{value / 1e6:9.3f}" if value is not None else f"{'-':>9}")
        lines.append(
            f"{name:<28} {cells[0]} {cells[1]} {cells[2]} "
            f"{int(summary.get('count', 0)):9d}"
        )
    if not routes:
        lines.append("(no span.query histograms yet)")

    gauges = snapshot.get("gauges", {}) or {}
    workers = [
        f"{name.split('.', 1)[1]}={gauges[name]:g}"
        for name in sorted(gauges)
        if name.startswith("executor.")
    ]
    if workers:
        lines.append("workers: " + "  ".join(workers))
    return "\n".join(lines)


def cmd_top(args) -> int:
    """Handle ``repro top``: poll a serve-metrics endpoint and render.

    Fetches ``/snapshot`` every ``--interval`` seconds and prints a
    frame of qps (from counter deltas), pool hit rate, per-route
    ``span.query.*`` latency quantiles, and worker gauges.
    ``--iterations 0`` runs until interrupted.
    """
    import time
    import urllib.request

    base = args.url.rstrip("/")
    prev = prev_time = None
    frame = 0
    try:
        while True:
            with urllib.request.urlopen(base + "/snapshot", timeout=10) as reply:
                snapshot = json.load(reply)
            now = time.monotonic()
            dt = (now - prev_time) if prev_time is not None else None
            print(f"--- repro top @ {base} (frame {frame + 1}) ---")
            print(format_top_frame(snapshot, prev, dt))
            sys.stdout.flush()
            prev, prev_time = snapshot, now
            frame += 1
            if args.iterations and frame >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_fsck(args) -> int:
    """Handle ``repro fsck``: integrity-check a model directory.

    Verifies every file against the manifest (SHA-256 + sizes; sizes
    only with ``--quick``), then attempts a strict ``open()`` so purely
    structural damage (bad meta, shape mismatches) is caught even on
    legacy directories without a manifest.  Exit code 0 only when both
    checks pass.
    """
    from repro.storage.integrity import verify_manifest

    report = verify_manifest(args.model, deep=not args.quick)
    out = report.to_dict()
    try:
        CompressedMatrix.open(args.model).close()
        out["opens"] = "ok"
        opens_ok = True
    except ReproError as exc:
        out["opens"] = f"error: {exc}"
        opens_ok = False
    ok = report.ok and opens_ok
    out["ok"] = ok
    print(json.dumps(out, indent=2))
    return 0 if ok else 1


def cmd_verify(args) -> int:
    """Handle ``repro verify``: audit a model against its source."""
    from repro.core.verify import verify_model
    from repro.storage import MatrixStore

    with CompressedMatrix.open(args.model) as store:
        if args.dataset:
            source = load_dataset(args.dataset).matrix
            report = verify_model(source, store)
        else:
            raw = MatrixStore.open(args.input)
            try:
                report = verify_model(raw, store)
            finally:
                raw.close()
    print(report.summary())
    return 0 if report.ok else 1


def cmd_scatter(args) -> int:
    """Handle ``repro scatter``: print the Appendix A ASCII plot."""
    dataset = load_dataset(args.dataset)
    coords = scatter_coordinates(dataset.matrix, dimensions=2)
    print(f"{dataset.name}: {dataset.description}")
    print(ascii_scatter(coords, width=args.width, height=args.height))
    flagged = outlier_rows(coords)
    print(f"outlier rows: {flagged.tolist()[:20]}")
    return 0


def _warehouse(args):
    from repro.warehouse import Warehouse

    return Warehouse(args.root)


def cmd_wh_ingest(args) -> int:
    """Handle ``repro wh-ingest``: compress a dataset into a warehouse."""
    warehouse = _warehouse(args)
    matrix = load_dataset(args.dataset).matrix
    entry = warehouse.ingest(args.name, matrix, budget_fraction=args.budget)
    print(
        f"ingested {entry.name}: {entry.rows}x{entry.cols}, k={entry.cutoff}, "
        f"{entry.num_deltas} deltas, verified RMSPE={entry.verified_rmspe:.5f}"
    )
    return 0


def cmd_wh_list(args) -> int:
    """Handle ``repro wh-list``: print the warehouse catalog."""
    warehouse = _warehouse(args)
    if not warehouse.names():
        print("(empty warehouse)")
        return 0
    for name in warehouse.names():
        entry = warehouse.entry(name)
        verified = (
            f"RMSPE={entry.verified_rmspe:.5f}"
            if entry.verified_rmspe is not None
            else "unverified"
        )
        print(
            f"{entry.name}: {entry.rows}x{entry.cols} @ "
            f"{entry.budget_fraction:.0%}  k={entry.cutoff} "
            f"deltas={entry.num_deltas}  {verified}"
        )
    print(f"total model bytes: {warehouse.total_model_bytes()}")
    return 0


def cmd_wh_verify(args) -> int:
    """Handle ``repro wh-verify``: re-audit one warehouse dataset."""
    report = _warehouse(args).verify(args.name)
    print(report.summary())
    return 0 if report.ok else 1


def cmd_wh_drop(args) -> int:
    """Handle ``repro wh-drop``: remove one warehouse dataset."""
    _warehouse(args).drop(args.name)
    print(f"dropped {args.name}")
    return 0


def cmd_datasets(_args) -> int:
    """Handle ``repro datasets``: list built-in dataset names."""
    from repro.data import dataset_names

    for name in dataset_names():
        print(name)
    print("(any phone<N> or phone<N>k name also works, e.g. phone2500)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree for the CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SVDD-compressed time-sequence store (SIGMOD 1997 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="compress a matrix into a model directory")
    group = build.add_mutually_exclusive_group(required=True)
    group.add_argument("--dataset", help="built-in dataset name (e.g. phone2000)")
    group.add_argument("--input", help="path to a MatrixStore file")
    build.add_argument("--budget", type=float, default=0.10, help="space fraction")
    build.add_argument("--out", required=True, help="output model directory")
    build.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker threads for the parallel build passes (default 1)",
    )
    build.set_defaults(func=cmd_build)

    info = sub.add_parser("info", help="inspect a compressed model")
    info.add_argument("model", help="model directory")
    info.set_defaults(func=cmd_info)

    append = sub.add_parser(
        "append", help="append new days/customers to a model without a rebuild"
    )
    append.add_argument("model", help="model directory")
    agroup = append.add_mutually_exclusive_group(required=True)
    agroup.add_argument(
        "--cols", help=".npy with (rows, d) new day columns to append"
    )
    agroup.add_argument(
        "--rows", help=".npy with (n, cols) new customer rows to append"
    )
    append.add_argument(
        "--defer-summaries",
        action="store_true",
        dest="defer_summaries",
        help="skip the summary-store refresh (catch up later with "
        "`repro summarize`); the append itself stays crash-atomic",
    )
    append.set_defaults(func=cmd_append)

    summarize = sub.add_parser(
        "summarize",
        help="materialize or refresh a model's summary store (rollups)",
    )
    summarize.add_argument(
        "target", help="model directory (warehouse root with --all)"
    )
    summarize.add_argument(
        "--all",
        action="store_true",
        dest="all_models",
        help="treat TARGET as a warehouse root; summarize every model",
    )
    summarize.add_argument(
        "--rebuild",
        action="store_true",
        help="cold-recompute even when the store is fresh",
    )
    summarize.add_argument(
        "--start-date",
        default=None,
        help="calendar date of column 0 (YYYY-MM-DD) for calendar-aligned "
        "month/quarter/year buckets",
    )
    summarize.set_defaults(func=cmd_summarize)

    cell = sub.add_parser("cell", help="reconstruct one cell")
    cell.add_argument("model", help="model directory")
    cell.add_argument("row", type=int)
    cell.add_argument("col", type=int)
    cell.add_argument(
        "--profile", action="store_true", help="print the QueryProfile as JSON"
    )
    cell.set_defaults(func=cmd_cell)

    aggregate = sub.add_parser("aggregate", help="run an aggregate query")
    aggregate.add_argument("model", help="model directory")
    aggregate.add_argument(
        "--function", default="avg", help="sum|avg|count|min|max|stddev"
    )
    aggregate.add_argument("--rows", default=":", help="row range a:b (default all)")
    aggregate.add_argument("--cols", default=":", help="col range a:b (default all)")
    aggregate.add_argument(
        "--explain",
        action="store_true",
        help="print the query plan as JSON instead of executing",
    )
    aggregate.add_argument(
        "--profile", action="store_true", help="print the QueryProfile as JSON"
    )
    aggregate.add_argument(
        "--max-rmspe",
        type=float,
        default=None,
        dest="max_rmspe",
        help="error budget: admit the approximate SVD-only route when its "
        "stored RMSPE fits (0 = exact only)",
    )
    aggregate.set_defaults(func=cmd_aggregate)

    query = sub.add_parser("query", help="run a textual query against a model")
    query.add_argument("model", help="model directory")
    query.add_argument(
        "text", help="e.g. 'avg() rows 0:100 cols 7:14' or 'cell(3, 5)'"
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the query plan as JSON instead of executing",
    )
    query.add_argument(
        "--profile", action="store_true", help="print the QueryProfile as JSON"
    )
    query.add_argument(
        "--max-rmspe",
        type=float,
        default=None,
        dest="max_rmspe",
        help="error budget: admit the approximate SVD-only route when its "
        "stored RMSPE fits (0 = exact only)",
    )
    query.set_defaults(func=cmd_query)

    batch = sub.add_parser(
        "batch", help="run a batch of queries through a concurrent executor"
    )
    batch.add_argument("model", help="model directory")
    batch.add_argument(
        "--file", help="file of textual queries, one per line ('#' comments)"
    )
    batch.add_argument(
        "--query",
        action="append",
        help="inline textual query (repeatable)",
    )
    batch.add_argument(
        "--mode",
        choices=("sequential", "thread", "process"),
        default="thread",
        help="serving strategy (default: thread)",
    )
    batch.add_argument(
        "--workers", type=int, default=None, help="pool size (default: auto)"
    )
    batch.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="queries per worker round trip (process mode; default: auto)",
    )
    batch.add_argument(
        "--profile",
        action="store_true",
        help="enable telemetry and print the batch span tree as JSON "
        "(process mode grafts worker trees into it)",
    )
    batch.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="arm the slow-query log at this threshold (milliseconds)",
    )
    batch.add_argument(
        "--slow-log", default=None, help="JSONL file for slow-query records"
    )
    batch.set_defaults(func=cmd_batch)

    stats = sub.add_parser(
        "stats", help="profiled random-cell workload + metrics registry dump"
    )
    stats.add_argument("model", help="model directory")
    stats.add_argument(
        "--queries", type=int, default=500, help="number of random cell queries"
    )
    stats.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    stats.add_argument(
        "--pool-capacity", type=int, default=64, help="U-store buffer pool pages"
    )
    stats.set_defaults(func=cmd_stats)

    serve_q = sub.add_parser(
        "serve",
        help="serve a model over HTTP with admission control, deadlines, "
        "load shedding, and graceful degradation",
    )
    serve_q.add_argument(
        "model",
        nargs="?",
        default=None,
        help="model directory (or use --root/--dataset)",
    )
    serve_q.add_argument("--root", default=None, help="warehouse root directory")
    serve_q.add_argument(
        "--dataset", default=None, help="warehouse dataset name to serve"
    )
    serve_q.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_q.add_argument(
        "--port", type=int, default=9465, help="TCP port (0 picks a free one)"
    )
    serve_q.add_argument(
        "--workers", type=int, default=None, help="worker processes (default: cores)"
    )
    serve_q.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        help="admitted-but-unfinished request ceiling before shedding",
    )
    serve_q.add_argument(
        "--max-queue-age-ms",
        type=float,
        default=2000.0,
        help="shed new requests when the oldest queued one is this stale",
    )
    serve_q.add_argument(
        "--default-timeout-ms",
        type=float,
        default=5000.0,
        help="per-request deadline when the client sends none",
    )
    serve_q.add_argument(
        "--max-timeout-ms",
        type=float,
        default=60000.0,
        help="ceiling on client-requested deadlines",
    )
    serve_q.add_argument(
        "--retry-after-s",
        type=float,
        default=1.0,
        help="Retry-After hint on shed (503) responses",
    )
    serve_q.add_argument(
        "--drain-grace-s",
        type=float,
        default=5.0,
        help="SIGTERM waits this long for in-flight requests",
    )
    serve_q.add_argument(
        "--breaker-failures",
        type=int,
        default=3,
        help="pool rebuilds within the window that trip the breaker",
    )
    serve_q.add_argument(
        "--breaker-window-s", type=float, default=30.0, help="breaker failure window"
    )
    serve_q.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=5.0,
        help="open-state dwell before a half-open probe",
    )
    serve_q.add_argument(
        "--brownout-sheds",
        type=int,
        default=8,
        help="sheds within the window that trigger brownout (SVD-only answers)",
    )
    serve_q.add_argument(
        "--brownout-window-s", type=float, default=10.0, help="brownout shed window"
    )
    serve_q.add_argument(
        "--allow-degraded",
        action="store_true",
        help="serve even if the delta sidecar fails verification "
        "(answers stamped degraded)",
    )
    serve_q.add_argument(
        "--duration",
        type=float,
        default=None,
        help="exit (with a graceful drain) after this many seconds",
    )
    serve_q.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="arm the slow-query log at this threshold (milliseconds)",
    )
    serve_q.add_argument(
        "--slow-log", default=None, help="JSONL file for slow-query records"
    )
    serve_q.set_defaults(func=cmd_serve)

    serve = sub.add_parser(
        "serve-metrics",
        help="serve the metrics registry over HTTP (/metrics, /healthz, /snapshot)",
    )
    serve.add_argument(
        "--model", default=None, help="model directory to exercise (optional)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=9464, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--snapshots", default=None, help="rotating JSONL registry-snapshot file"
    )
    serve.add_argument(
        "--interval", type=float, default=1.0, help="seconds between ticks"
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="exit after this many seconds (default: run until interrupted)",
    )
    serve.add_argument(
        "--exercise",
        type=int,
        default=0,
        help="random queries per tick against --model (keeps histograms live)",
    )
    serve.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="arm the slow-query log at this threshold (milliseconds)",
    )
    serve.add_argument(
        "--slow-log", default=None, help="JSONL file for slow-query records"
    )
    serve.set_defaults(func=cmd_serve_metrics)

    top = sub.add_parser(
        "top", help="live monitor polling a serve-metrics endpoint"
    )
    top.add_argument(
        "--url", default="http://127.0.0.1:9464", help="serve-metrics base URL"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between frames"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="frames to render before exiting (0 = until interrupted)",
    )
    top.set_defaults(func=cmd_top)

    fsck = sub.add_parser(
        "fsck", help="verify a model directory against its integrity manifest"
    )
    fsck.add_argument("model", help="model directory")
    fsck.add_argument(
        "--quick",
        action="store_true",
        help="compare file sizes only (skip SHA-256 hashing)",
    )
    fsck.set_defaults(func=cmd_fsck)

    verify = sub.add_parser("verify", help="audit a model against its source")
    verify.add_argument("model", help="model directory")
    vgroup = verify.add_mutually_exclusive_group(required=True)
    vgroup.add_argument("--dataset", help="built-in dataset the model was built from")
    vgroup.add_argument("--input", help="path to the source MatrixStore")
    verify.set_defaults(func=cmd_verify)

    scatter = sub.add_parser("scatter", help="Appendix A scatter plot of a dataset")
    scatter.add_argument("dataset", help="dataset name")
    scatter.add_argument("--width", type=int, default=72)
    scatter.add_argument("--height", type=int, default=20)
    scatter.set_defaults(func=cmd_scatter)

    datasets = sub.add_parser("datasets", help="list built-in datasets")
    datasets.set_defaults(func=cmd_datasets)

    wh_ingest = sub.add_parser("wh-ingest", help="ingest a dataset into a warehouse")
    wh_ingest.add_argument("--root", required=True, help="warehouse directory")
    wh_ingest.add_argument("--name", required=True, help="catalog name")
    wh_ingest.add_argument("--dataset", required=True, help="built-in dataset")
    wh_ingest.add_argument("--budget", type=float, default=0.10)
    wh_ingest.set_defaults(func=cmd_wh_ingest)

    wh_list = sub.add_parser("wh-list", help="list a warehouse's catalog")
    wh_list.add_argument("--root", required=True)
    wh_list.set_defaults(func=cmd_wh_list)

    wh_verify = sub.add_parser("wh-verify", help="re-audit one warehouse dataset")
    wh_verify.add_argument("--root", required=True)
    wh_verify.add_argument("name")
    wh_verify.set_defaults(func=cmd_wh_verify)

    wh_drop = sub.add_parser("wh-drop", help="remove one warehouse dataset")
    wh_drop.add_argument("--root", required=True)
    wh_drop.add_argument("name")
    wh_drop.set_defaults(func=cmd_wh_drop)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
