"""Ablation: robust SVD (paper future-work item b) vs plain SVD/SVDD.

Scenario: the Appendix A 'distraction' — a handful of extreme customers
tilt plain SVD's axes, degrading everyone else's reconstruction.  We
plant such rows into phone-like data and compare, at a fixed 10% space
budget:

- plain SVD;
- SVDD (standard axes + deltas);
- robust SVD (winsorized axes, no deltas);
- robust SVDD (winsorized axes + deltas).

Expected shape: plain SVD suffers most on the bulk; the winsorized axes
recover bulk accuracy; pairing them with deltas keeps the outliers
accurate too.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import (
    RobustSVDCompressor,
    RobustSVDDCompressor,
    SVDCompressor,
    SVDDCompressor,
)
from repro.data import phone_matrix
from repro.metrics import rmspe


def _contaminated() -> tuple[np.ndarray, np.ndarray]:
    """Phone data with planted whale customers; returns (data, bulk mask)."""
    data = phone_matrix(1500).copy()
    rng = np.random.default_rng(55)
    whales = rng.choice(1500, size=5, replace=False)
    data[whales] = rng.random((5, data.shape[1])) * data.max() * 50
    mask = np.ones(1500, dtype=bool)
    mask[whales] = False
    return data, mask


def test_ablation_robust(benchmark):
    data, bulk = _contaminated()
    budget = 0.10
    fitters = {
        "svd": SVDCompressor(budget_fraction=budget),
        "svdd": SVDDCompressor(budget_fraction=budget),
        "robust-svd": RobustSVDCompressor(budget_fraction=budget, clip_percentile=99),
        "robust-svdd": RobustSVDDCompressor(budget_fraction=budget, clip_percentile=99),
    }
    rows = []
    errors = {}
    for name, fitter in fitters.items():
        model = fitter.fit(data)
        recon = model.reconstruct()
        overall = rmspe(data, recon)
        bulk_err = rmspe(data[bulk], recon[bulk])
        errors[name] = (overall, bulk_err)
        rows.append([name, f"{overall:.4f}", f"{bulk_err:.4f}"])
    lines = format_table(
        "Ablation: robust axes on contaminated phone data @ 10% space",
        ["method", "overall RMSPE", "bulk RMSPE"],
        rows,
    )

    # The tilt matters most when k is small (few axes to spare on whales):
    # repeat the plain-vs-robust comparison at fixed k = 2.
    small_rows = []
    small = {}
    for name, fitter in {
        "svd k=2": SVDCompressor(k=2),
        "robust-svd k=2": RobustSVDCompressor(k=2, clip_percentile=99),
    }.items():
        recon = fitter.fit(data).reconstruct()
        bulk_err = rmspe(data[bulk], recon[bulk])
        small[name] = bulk_err
        small_rows.append([name, f"{rmspe(data, recon):.4f}", f"{bulk_err:.4f}"])
    lines.append("")
    lines.extend(
        format_table(
            "Same data at fixed k=2 (the Appendix A tilt regime)",
            ["method", "overall RMSPE", "bulk RMSPE"],
            small_rows,
        )
    )
    emit("ablation_robust", lines)

    # At generous k the axes have slack for the whales, so plain and
    # robust are comparable; never let robust be materially worse.
    assert errors["robust-svd"][1] <= errors["svd"][1] * 1.10
    # At small k the winsorized axes must fit the bulk strictly better.
    assert small["robust-svd k=2"] < small["svd k=2"]
    # The composed method keeps overall error in SVDD's ballpark.
    assert errors["robust-svdd"][0] <= errors["svdd"][0] * 3

    benchmark(lambda: RobustSVDCompressor(budget_fraction=budget).fit(data))
