"""Open-addressing hash table for outlier deltas.

The paper stores SVDD's outlier triplets ``(row, column, delta)`` 'in a
hash table, where the key is the combination of ``row*M + column``'
(Section 4.2).  This module implements that table from scratch:
integer keys, float payloads, linear probing, incremental growth at a
bounded load factor, and tombstone-free deletion via backward-shift.

The table also reports its exact serialized size so the SVDD space
accounting can charge deltas against the storage budget honestly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.exceptions import ConfigurationError

_EMPTY = -1
_MASK64 = (1 << 64) - 1


def _mix(key: int) -> int:
    """SplitMix64 finalizer — cheap, well-distributed integer hashing."""
    z = (key + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class OpenAddressingTable:
    """Int -> float hash map with linear probing.

    Args:
        initial_capacity: starting number of slots (rounded up to a
            power of two).
        max_load_factor: occupancy threshold that triggers growth.
    """

    def __init__(self, initial_capacity: int = 16, max_load_factor: float = 0.7) -> None:
        if initial_capacity < 1:
            raise ConfigurationError(
                f"initial_capacity must be >= 1, got {initial_capacity}"
            )
        if not 0.1 <= max_load_factor <= 0.95:
            raise ConfigurationError(
                f"max_load_factor must be in [0.1, 0.95], got {max_load_factor}"
            )
        capacity = 1
        while capacity < initial_capacity:
            capacity <<= 1
        self._keys = np.full(capacity, _EMPTY, dtype=np.int64)
        self._values = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._max_load_factor = max_load_factor
        self._probe_count = 0

    @property
    def capacity(self) -> int:
        """Current number of slots."""
        return int(self._keys.shape[0])

    @property
    def probe_count(self) -> int:
        """Total slot inspections performed (for the Bloom-filter ablation)."""
        return self._probe_count

    def reset_probe_count(self) -> None:
        """Zero the probe counter."""
        self._probe_count = 0

    def __len__(self) -> int:
        return self._size

    def _slot(self, key: int) -> int:
        return _mix(key) & (self.capacity - 1)

    def _find(self, key: int) -> tuple[int, bool]:
        """Return ``(index, found)`` of key's slot or the insertion point."""
        mask = self.capacity - 1
        idx = self._slot(key)
        while True:
            self._probe_count += 1
            slot_key = self._keys[idx]
            if slot_key == _EMPTY:
                return idx, False
            if slot_key == key:
                return idx, True
            idx = (idx + 1) & mask

    def put(self, key: int, value: float) -> None:
        """Insert or overwrite the value for ``key``."""
        if key < 0:
            raise ConfigurationError(f"keys must be non-negative, got {key}")
        if (self._size + 1) / self.capacity > self._max_load_factor:
            self._grow()
        idx, found = self._find(key)
        self._keys[idx] = key
        self._values[idx] = value
        if not found:
            self._size += 1

    def get(self, key: int, default: float | None = None) -> float | None:
        """Return the value for ``key`` or ``default`` when absent."""
        idx, found = self._find(key)
        return float(self._values[idx]) if found else default

    def __contains__(self, key: int) -> bool:
        _, found = self._find(key)
        return found

    def remove(self, key: int) -> bool:
        """Delete ``key``; returns False if it was not present.

        Uses backward-shift deletion so lookups never slow down from
        tombstone accumulation.
        """
        idx, found = self._find(key)
        if not found:
            return False
        mask = self.capacity - 1
        self._keys[idx] = _EMPTY
        self._size -= 1
        # Re-seat any displaced keys in the probe chain after idx.
        nxt = (idx + 1) & mask
        while self._keys[nxt] != _EMPTY:
            key_to_move = int(self._keys[nxt])
            value_to_move = float(self._values[nxt])
            self._keys[nxt] = _EMPTY
            self._size -= 1
            self.put(key_to_move, value_to_move)
            nxt = (nxt + 1) & mask
        return True

    def items(self) -> Iterator[tuple[int, float]]:
        """Iterate ``(key, value)`` pairs in slot order."""
        for idx in range(self.capacity):
            if self._keys[idx] != _EMPTY:
                yield int(self._keys[idx]), float(self._values[idx])

    def _grow(self) -> None:
        old_keys = self._keys
        old_values = self._values
        self._keys = np.full(old_keys.shape[0] * 2, _EMPTY, dtype=np.int64)
        self._values = np.zeros(old_values.shape[0] * 2, dtype=np.float64)
        self._size = 0
        for idx in range(old_keys.shape[0]):
            if old_keys[idx] != _EMPTY:
                self.put(int(old_keys[idx]), float(old_values[idx]))

    def size_bytes(self) -> int:
        """In-memory footprint of the slot arrays."""
        return int(self._keys.nbytes + self._values.nbytes)
