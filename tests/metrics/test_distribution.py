"""Tests for error distributions and the streaming accumulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.metrics import StreamingErrorAccumulator, error_distribution, rmspe
from repro.metrics.errors import worst_case_error


class TestErrorDistribution:
    def test_sorted_descending(self, rng):
        x = rng.standard_normal((10, 10))
        x_hat = x + rng.standard_normal((10, 10))
        dist = error_distribution(x, x_hat)
        assert np.all(np.diff(dist) <= 0)
        assert dist.size == 100

    def test_top_truncation(self, rng):
        x = rng.standard_normal((10, 10))
        dist = error_distribution(x, x + 1.0, top=7)
        assert dist.size == 7

    def test_top_must_be_positive(self, rng):
        x = np.ones((2, 2))
        with pytest.raises(ConfigurationError):
            error_distribution(x, x, top=0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            error_distribution(np.ones((2, 2)), np.ones((3, 2)))

    def test_heavy_tail_visible(self, rng):
        """A matrix with few gross errors shows the Fig. 8 steep drop."""
        x = rng.standard_normal((50, 50))
        noise = rng.standard_normal((50, 50)) * 0.001
        noise.ravel()[:10] = 50.0  # 10 gross outliers
        dist = error_distribution(x, x + noise)
        assert dist[9] / dist[10] > 100  # cliff between outliers and the rest


class TestStreamingAccumulator:
    def test_matches_direct_rmspe(self, rng):
        x = rng.standard_normal((30, 8)) * 2 + 5
        x_hat = x + rng.standard_normal((30, 8)) * 0.2
        acc = StreamingErrorAccumulator()
        for i in range(30):
            acc.add_row(x[i], x_hat[i])
        assert acc.rmspe() == pytest.approx(rmspe(x, x_hat))
        assert acc.count == 240

    def test_matches_direct_worst_case(self, rng):
        x = rng.standard_normal((20, 6))
        x_hat = x + rng.standard_normal((20, 6))
        acc = StreamingErrorAccumulator()
        for i in range(20):
            acc.add_row(x[i], x_hat[i])
        max_abs, normalized = worst_case_error(x, x_hat)
        assert acc.max_abs_error() == pytest.approx(max_abs)
        assert acc.max_normalized_error() == pytest.approx(normalized)

    def test_empty_accumulator_raises(self):
        acc = StreamingErrorAccumulator()
        with pytest.raises(ShapeError):
            acc.rmspe()
        with pytest.raises(ShapeError):
            acc.max_normalized_error()

    def test_row_shape_mismatch(self):
        acc = StreamingErrorAccumulator()
        with pytest.raises(ShapeError):
            acc.add_row(np.ones(3), np.ones(4))

    def test_sum_squared_error(self):
        acc = StreamingErrorAccumulator()
        acc.add_row(np.array([1.0, 2.0]), np.array([2.0, 2.0]))
        acc.add_row(np.array([0.0, 0.0]), np.array([0.0, 3.0]))
        assert acc.sum_squared_error == pytest.approx(1.0 + 9.0)

    def test_constant_data_edge_case(self):
        acc = StreamingErrorAccumulator()
        acc.add_row(np.array([5.0, 5.0]), np.array([5.0, 5.0]))
        assert acc.rmspe() == 0.0
        acc.add_row(np.array([5.0, 5.0]), np.array([6.0, 5.0]))
        assert acc.rmspe() == np.inf


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(1, 20),
    cols=st.integers(1, 10),
)
def test_property_streaming_equals_batch(seed, rows, cols):
    sample_rng = np.random.default_rng(seed)
    x = sample_rng.standard_normal((rows, cols)) * 3
    x_hat = x + sample_rng.standard_normal((rows, cols))
    acc = StreamingErrorAccumulator()
    for i in range(rows):
        acc.add_row(x[i], x_hat[i])
    direct = rmspe(x, x_hat)
    if np.isfinite(direct):
        assert acc.rmspe() == pytest.approx(direct, rel=1e-9)
