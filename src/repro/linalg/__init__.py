"""Linear-algebra substrate.

The paper's out-of-core SVD reduces the decomposition of the huge
``N x M`` matrix ``X`` to an in-memory symmetric eigenproblem on the
small ``M x M`` Gram matrix ``C = X^t X`` (Lemma 3.2).  This package
provides the eigensolvers for that step:

- :class:`JacobiEigensolver` — a from-scratch cyclic Jacobi rotation
  solver, the kind of self-contained numerical kernel a 1997 system
  would ship;
- :class:`NumpyEigensolver` — a thin wrapper over ``numpy.linalg.eigh``
  used for cross-validation and speed;
- :class:`PowerIterationEigensolver` — deflated power iteration, useful
  when only the top-k eigenpairs are needed;
- :class:`TridiagonalEigensolver` — the Numerical Recipes
  ``tred2``/``tqli`` pipeline (Householder reduction + implicit-shift
  QL), the era-faithful from-scratch solver the paper's citation ships.

All solvers implement the :class:`SymmetricEigensolver` interface and
return eigenpairs sorted by decreasing eigenvalue.
"""

from repro.linalg.eigen import (
    EigenResult,
    JacobiEigensolver,
    NumpyEigensolver,
    PowerIterationEigensolver,
    SymmetricEigensolver,
    default_eigensolver,
)
from repro.linalg.tridiagonal import (
    TridiagonalEigensolver,
    householder_tridiagonalize,
    ql_implicit_shift,
)
from repro.linalg.validate import (
    is_column_orthonormal,
    is_symmetric,
    require_matrix,
    require_symmetric,
)

__all__ = [
    "EigenResult",
    "JacobiEigensolver",
    "NumpyEigensolver",
    "PowerIterationEigensolver",
    "SymmetricEigensolver",
    "TridiagonalEigensolver",
    "default_eigensolver",
    "householder_tridiagonalize",
    "ql_implicit_shift",
    "is_column_orthonormal",
    "is_symmetric",
    "require_matrix",
    "require_symmetric",
]
