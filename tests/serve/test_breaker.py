"""Circuit breaker: trip, cooldown, half-open probe, close."""

from __future__ import annotations

import time

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(failures=3, window_s=30, cooldown_s=5)
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.allow()

    def test_trips_after_threshold_within_window(self):
        breaker = CircuitBreaker(failures=3, window_s=30, cooldown_s=5)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_old_failures_age_out_of_window(self):
        breaker = CircuitBreaker(failures=2, window_s=0.02, cooldown_s=5)
        breaker.record_failure()
        time.sleep(0.04)
        breaker.record_failure()
        # Each failure fell out of the window before the next landed.
        assert breaker.state == CLOSED

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failures=1, window_s=30, cooldown_s=0.02)
        breaker.record_failure()
        assert breaker.state == OPEN
        time.sleep(0.03)
        assert breaker.state == HALF_OPEN
        # Exactly one probe slot.
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failures=1, window_s=30, cooldown_s=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()  # probe goes out
        breaker.record_failure()  # probe came back dead
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 2

    def test_abandoned_probe_rearms_after_cooldown(self):
        breaker = CircuitBreaker(failures=1, window_s=30, cooldown_s=0.02)
        breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()  # probe goes out... and never reports
        assert not breaker.allow()
        time.sleep(0.03)
        # The breaker must not wedge half-open forever.
        assert breaker.allow()

    def test_success_while_closed_is_a_noop(self):
        breaker = CircuitBreaker(failures=2, window_s=30, cooldown_s=5)
        breaker.record_failure()
        breaker.record_success()
        # Closed-state successes don't clear the failure window.
        breaker.record_failure()
        assert breaker.state == OPEN


class TestTelemetry:
    def test_state_gauge_and_trip_counter(self):
        from repro.obs.registry import registry

        trips_before = registry.counter("server.breaker_trips").value
        breaker = CircuitBreaker(failures=1, window_s=30, cooldown_s=60)
        breaker.record_failure()
        assert registry.counter("server.breaker_trips").value == trips_before + 1
        assert registry.gauge("server.breaker_state").value == 2
