"""Tests for the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, PageError
from repro.storage import BufferPool, FilePager
from repro.storage.buffer_pool import read_span


@pytest.fixture()
def pager(tmp_path):
    with FilePager(tmp_path / "data.pg", page_size=128, create=True) as pager:
        for page_id in range(10):
            pager.write_page(page_id, bytes([page_id]) * 128)
        yield pager


class TestCaching:
    def test_hit_after_miss(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(3)
        pool.get_page(3)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_contents_correct(self, pager):
        pool = BufferPool(pager, capacity=4)
        assert pool.get_page(7) == bytes([7]) * 128

    def test_lru_evicts_least_recent(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # refresh 0; 1 is now LRU
        pool.get_page(2)  # evicts 1
        assert pool.stats.evictions == 1
        pool.get_page(0)
        assert pool.stats.hits == 2  # 0 stayed resident

    def test_capacity_bounded(self, pager):
        pool = BufferPool(pager, capacity=3)
        for page_id in range(10):
            pool.get_page(page_id)
        assert pool.cached_pages() == 3

    def test_invalid_capacity(self, pager):
        with pytest.raises(ConfigurationError):
            BufferPool(pager, capacity=0)

    def test_hit_rate(self, pager):
        pool = BufferPool(pager, capacity=4)
        assert pool.stats.hit_rate == 0.0
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.stats.hit_rate == pytest.approx(2 / 3)

    def test_invalidate_one(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(1)
        pool.invalidate(1)
        pool.get_page(1)
        assert pool.stats.misses == 2

    def test_invalidate_all(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(1)
        pool.get_page(2)
        pool.invalidate()
        assert pool.cached_pages() == 0


class TestBatchedBypassAccounting:
    """Pages served around the cache (scan resistance) count as
    ``bypasses``, so batched workloads cannot fake a high hit rate."""

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_small_batch_fully_cached(self, pager, policy):
        pool = BufferPool(pager, capacity=4, policy=policy)
        pool.get_pages([0, 1, 2])
        assert pool.stats.misses == 3
        assert pool.stats.bypasses == 0
        assert pool.cached_pages() == 3

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_scan_batch_bypasses_cache(self, pager, policy):
        pool = BufferPool(pager, capacity=4, policy=policy)
        data = pool.get_pages(range(10))
        # Only the scan tail (capacity // 2 pages) joins the cache.
        assert pool.stats.misses == 2
        assert pool.stats.bypasses == 8
        assert pool.stats.accesses == 10
        assert pool.cached_pages() == 2
        # Bypassed pages were still served correctly.
        assert data[0] == bytes([0]) * 128

    def test_resident_set_survives_scan(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_page(0)
        pool.get_pages(range(1, 10))  # 9 misses >= capacity -> scan mode
        pool.get_page(0)
        assert pool.stats.hits == 1  # page 0 was not evicted by the scan

    @pytest.mark.parametrize("policy", ["lru", "clock"])
    def test_page_range_bypasses(self, pager, policy):
        pool = BufferPool(pager, capacity=4, policy=policy)
        first, blob = pool.get_page_range(range(10))
        assert first == 0 and len(blob) == 10 * 128
        assert pool.stats.misses == 2  # the kept tail: pages 8 and 9
        assert pool.stats.bypasses == 8
        assert pool.cached_pages() == 2

    def test_page_range_counts_gap_pages(self, pager):
        pool = BufferPool(pager, capacity=16)
        pager.stats.reset()
        pool.get_page_range([0, 5, 9])
        # The span read fetched 10 pages for 3 requested ones.
        assert pager.stats.gap_pages == 7
        assert pool.stats.misses == 3
        assert pool.stats.bypasses == 0

    def test_hit_rate_stays_honest_under_bypasses(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_pages(range(10))  # 0 hits over 10 accesses
        assert pool.stats.hit_rate == 0.0
        pool.get_page(9)  # tail page stayed cached
        assert pool.stats.hit_rate == pytest.approx(1 / 11)

    def test_reset_zeroes_bypasses(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_pages(range(10))
        assert pool.stats.bypasses > 0
        pool.stats.reset()
        assert pool.stats.bypasses == 0
        assert pool.stats.accesses == 0

    def test_to_dict_exports_all_counters(self, pager):
        pool = BufferPool(pager, capacity=4)
        pool.get_pages(range(10))
        pool.get_page(9)
        exported = pool.stats.to_dict()
        assert exported["hits"] == 1
        assert exported["misses"] == 2
        assert exported["bypasses"] == 8
        assert exported["accesses"] == 11
        assert exported["hit_rate"] == pytest.approx(1 / 11)


class TestPinning:
    def test_pinned_pages_survive_pressure(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.pin(0)
        for page_id in range(1, 10):
            pool.get_page(page_id)
        pool.get_page(0)
        assert pool.stats.misses == 10  # page 0 missed only once

    def test_unpin_allows_eviction(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.pin(0)
        pool.unpin(0)
        for page_id in range(1, 5):
            pool.get_page(page_id)
        pool.get_page(0)
        assert pool.stats.misses == 6  # page 0 was evicted and re-read

    def test_all_pinned_overflow_tolerated(self, pager):
        pool = BufferPool(pager, capacity=2)
        pool.pin(0)
        pool.pin(1)
        data = pool.get_page(2)  # no evictable page; must still succeed
        assert data == bytes([2]) * 128


class TestReadSpan:
    def test_within_one_page(self, pager):
        pool = BufferPool(pager, capacity=4)
        assert read_span(pool, 130, 5) == bytes([1]) * 5

    def test_across_page_boundary(self, pager):
        pool = BufferPool(pager, capacity=4)
        data = read_span(pool, 120, 16)
        assert data == bytes([0]) * 8 + bytes([1]) * 8

    def test_many_pages(self, pager):
        pool = BufferPool(pager, capacity=8)
        data = read_span(pool, 0, 128 * 3)
        assert data == bytes([0]) * 128 + bytes([1]) * 128 + bytes([2]) * 128

    def test_negative_span_rejected(self, pager):
        pool = BufferPool(pager, capacity=4)
        with pytest.raises(PageError):
            read_span(pool, -1, 4)
        with pytest.raises(PageError):
            read_span(pool, 0, -4)

    def test_past_eof_rejected(self, pager):
        pool = BufferPool(pager, capacity=4)
        with pytest.raises(PageError):
            read_span(pool, 128 * 9, 200)


class TestClockPolicy:
    def test_invalid_policy_rejected(self, pager):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            BufferPool(pager, capacity=2, policy="mru")

    def test_contents_correct(self, pager):
        pool = BufferPool(pager, capacity=3, policy="clock")
        for page_id in [0, 1, 2, 3, 4, 0, 2, 4, 1]:
            assert pool.get_page(page_id) == bytes([page_id]) * 128

    def test_capacity_bounded(self, pager):
        pool = BufferPool(pager, capacity=3, policy="clock")
        for page_id in range(10):
            pool.get_page(page_id)
        assert pool.cached_pages() == 3

    def test_unreferenced_victim_chosen(self, pager):
        """After a sweep clears reference bits, the next eviction takes
        the page that was not touched since — second-chance semantics."""
        pool = BufferPool(pager, capacity=2, policy="clock")
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)  # full sweep clears 0 and 1, wraps, evicts 0
        # Resident: {1 (bit clear), 2 (bit set from insert)}.
        pool.get_page(3)  # hand finds 1 unreferenced -> evicts 1
        assert pool.get_page(2) == bytes([2]) * 128
        assert pool.stats.misses == 4  # pages 0,1,2,3 missed once; 2 stayed hot

    def test_pinned_pages_never_evicted(self, pager):
        pool = BufferPool(pager, capacity=2, policy="clock")
        pool.pin(0)
        for page_id in range(1, 8):
            pool.get_page(page_id)
        pool.get_page(0)
        assert pool.stats.misses == 8  # one miss per page; 0 stayed pinned

    def test_invalidate_resets_clock_state(self, pager):
        pool = BufferPool(pager, capacity=2, policy="clock")
        pool.get_page(0)
        pool.get_page(1)
        pool.invalidate()
        assert pool.cached_pages() == 0
        for page_id in range(5):
            pool.get_page(page_id)
        assert pool.cached_pages() == 2

    def test_invalidate_single_page(self, pager):
        pool = BufferPool(pager, capacity=4, policy="clock")
        pool.get_page(0)
        pool.get_page(1)
        pool.invalidate(0)
        assert pool.cached_pages() == 1
        pool.get_page(0)
        assert pool.stats.misses == 3

    def test_read_span_works_with_clock(self, pager):
        from repro.storage.buffer_pool import read_span

        pool = BufferPool(pager, capacity=2, policy="clock")
        data = read_span(pool, 120, 16)
        assert data == bytes([0]) * 8 + bytes([1]) * 8

    def test_hit_rate_comparable_to_lru_on_skewed_workload(self, pager):
        """On a Zipf-ish workload CLOCK approximates LRU's hit rate."""
        import numpy as np

        rng = np.random.default_rng(5)
        workload = rng.zipf(1.5, size=2000) % 10
        rates = {}
        for policy in ("lru", "clock"):
            pool = BufferPool(pager, capacity=4, policy=policy)
            for page_id in workload:
                pool.get_page(int(page_id))
            rates[policy] = pool.stats.hit_rate
        assert rates["clock"] > rates["lru"] - 0.10


class TestSharding:
    """Lock striping: shard selection, capacity split, concurrent use."""

    def _big_pager(self, tmp_path, pages=64):
        pager = FilePager(tmp_path / "big.pg", page_size=128, create=True)
        for page_id in range(pages):
            pager.write_page(page_id, bytes([page_id % 251]) * 128)
        return pager

    def test_small_pools_stay_single_shard(self, pager):
        # Historical exact-LRU semantics depend on one shard; small
        # capacities must not silently stripe.
        assert BufferPool(pager, capacity=16).num_shards == 1

    def test_large_pools_stripe_automatically(self, tmp_path):
        pager = self._big_pager(tmp_path)
        try:
            assert BufferPool(pager, capacity=64).num_shards > 1
        finally:
            pager.close()

    def test_explicit_shard_count(self, tmp_path):
        pager = self._big_pager(tmp_path)
        try:
            pool = BufferPool(pager, capacity=64, shards=4)
            assert pool.num_shards == 4
            with pytest.raises(ConfigurationError):
                BufferPool(pager, capacity=4, shards=8)
            with pytest.raises(ConfigurationError):
                BufferPool(pager, capacity=4, shards=0)
        finally:
            pager.close()

    def test_shard_capacities_sum_to_total(self, tmp_path):
        pager = self._big_pager(tmp_path)
        try:
            pool = BufferPool(pager, capacity=63, shards=4)
            assert sum(s.capacity for s in pool._shards) == 63
            for page_id in range(64):
                pool.get_page(page_id)
            assert pool.cached_pages() <= 63
        finally:
            pager.close()

    def test_sharded_pool_serves_correct_bytes(self, tmp_path):
        pager = self._big_pager(tmp_path)
        try:
            pool = BufferPool(pager, capacity=64, shards=4)
            for page_id in (0, 1, 4, 5, 63, 17):
                assert pool.get_page(page_id) == bytes([page_id % 251]) * 128
                # Second access is a hit with the same bytes.
                assert pool.get_page(page_id) == bytes([page_id % 251]) * 128
        finally:
            pager.close()

    def test_concurrent_readers_agree(self, tmp_path):
        import threading

        pager = self._big_pager(tmp_path)
        try:
            pool = BufferPool(pager, capacity=32, shards=4)
            barrier = threading.Barrier(8)
            errors = []

            def body(seed):
                import random

                rng = random.Random(seed)
                barrier.wait()
                for _ in range(300):
                    page_id = rng.randrange(64)
                    got = pool.get_page(page_id)
                    if got != bytes([page_id % 251]) * 128:
                        errors.append(page_id)

            threads = [
                threading.Thread(target=body, args=(seed,)) for seed in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert pool.cached_pages() <= 32
            stats = pool.stats
            assert stats.hits + stats.misses == 8 * 300
        finally:
            pager.close()

    def test_concurrent_batch_reads(self, tmp_path):
        import threading

        pager = self._big_pager(tmp_path)
        try:
            pool = BufferPool(pager, capacity=48, shards=4)
            barrier = threading.Barrier(4)
            errors = []

            def body(offset):
                barrier.wait()
                for start in range(0, 48, 4):
                    ids = [(start + offset + delta) % 64 for delta in range(6)]
                    pages = pool.get_pages(ids)
                    for page_id in ids:
                        if pages[page_id] != bytes([page_id % 251]) * 128:
                            errors.append(page_id)

            threads = [
                threading.Thread(target=body, args=(offset,))
                for offset in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
        finally:
            pager.close()
