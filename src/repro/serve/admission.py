"""Bounded admission with load shedding.

The failure mode this prevents: a burst of queries outruns the worker
pool, the queue grows without bound, every queued request eventually
times out, and the server spends its capacity computing answers nobody
is waiting for anymore.  Classic remedy (and the one this module
implements): **admit a bounded amount of work and shed the rest
early**, with a ``Retry-After`` hint so well-behaved clients back off.

Two guards, checked at admission time:

- **depth** — admitted-but-unfinished requests ≥ ``max_depth``;
- **age** — the *oldest* in-flight request has been in the system
  longer than ``max_age_ms``.  Depth alone misses the pathological
  case where a few slow queries wedge the pool: the queue is short but
  stale, and piling new work behind it only manufactures deadline
  misses.

Both fire :class:`~repro.exceptions.OverloadedError` (the HTTP tier
maps it to ``503`` + ``Retry-After``) and count into
``server.shed.<reason>``.  Admission itself is a context-managed
ticket so the depth gauge can never leak on an error path.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import OverloadedError
from repro.obs.registry import registry as _obs

__all__ = ["AdmissionController"]


class AdmissionController:
    """Tracks in-flight requests; admits or sheds new arrivals.

    Args:
        max_depth: ceiling on concurrently admitted requests.
        max_age_ms: staleness ceiling on the oldest admitted request.
        retry_after_s: backoff hint carried by the shed error.
    """

    def __init__(
        self, max_depth: int, max_age_ms: float, retry_after_s: float = 1.0
    ) -> None:
        self.max_depth = int(max_depth)
        self.max_age_ms = float(max_age_ms)
        self.retry_after_s = float(retry_after_s)
        self._lock = threading.Lock()
        self._next_ticket = 0
        #: ticket id -> monotonic_ns admission instant (insertion
        #: ordered, so the first value is always the oldest).
        self._inflight: dict[int, int] = {}
        self.admitted_total = 0
        self.shed_total = 0

    # -- observation ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Admitted-but-unfinished requests right now."""
        with self._lock:
            return len(self._inflight)

    def oldest_age_ms(self) -> float:
        """Age of the oldest in-flight request (0.0 when idle)."""
        with self._lock:
            return self._oldest_age_ms_locked(time.monotonic_ns())

    def _oldest_age_ms_locked(self, now_ns: int) -> float:
        if not self._inflight:
            return 0.0
        oldest_ns = next(iter(self._inflight.values()))
        return (now_ns - oldest_ns) / 1e6

    def _publish_locked(self, now_ns: int) -> None:
        _obs.gauge("server.queue_depth").set(len(self._inflight))
        _obs.gauge("server.queue_age_ms").set(self._oldest_age_ms_locked(now_ns))

    # -- admission ------------------------------------------------------

    def shed(self, reason: str, message: str | None = None) -> OverloadedError:
        """Count one shed and build the error to raise for it.

        Shared by the two admission guards here and by the dispatcher's
        drain/brownout/breaker sheds, so every 503 the server ever
        sends flows through one counter family.
        """
        with self._lock:
            self.shed_total += 1
        _obs.counter("server.shed").inc()
        _obs.counter(f"server.shed.{reason}").inc()
        return OverloadedError(
            message or f"overloaded ({reason}); retry after "
            f"{self.retry_after_s:g}s",
            retry_after_s=self.retry_after_s,
            reason=reason,
        )

    def admit(self) -> "_Ticket":
        """Admit one request or raise :class:`OverloadedError`.

        Use as a context manager::

            with controller.admit():
                ... run the query ...
        """
        now_ns = time.monotonic_ns()
        with self._lock:
            if len(self._inflight) >= self.max_depth:
                depth = len(self._inflight)
            elif self._oldest_age_ms_locked(now_ns) > self.max_age_ms:
                raise self._shed_locked_age(now_ns)
            else:
                self._next_ticket += 1
                ticket = self._next_ticket
                self._inflight[ticket] = now_ns
                self.admitted_total += 1
                self._publish_locked(now_ns)
                _obs.counter("server.admitted").inc()
                return _Ticket(self, ticket)
        # Depth shed: raise outside the lock (shed() re-acquires it).
        raise self.shed(
            "depth",
            f"queue depth {depth} at ceiling {self.max_depth}; "
            f"retry after {self.retry_after_s:g}s",
        )

    def _shed_locked_age(self, now_ns: int) -> OverloadedError:
        # Called with the lock held; inline the shed bookkeeping.
        self.shed_total += 1
        _obs.counter("server.shed").inc()
        _obs.counter("server.shed.age").inc()
        age = self._oldest_age_ms_locked(now_ns)
        return OverloadedError(
            f"oldest queued request is {age:.0f} ms old "
            f"(ceiling {self.max_age_ms:g} ms); retry after "
            f"{self.retry_after_s:g}s",
            retry_after_s=self.retry_after_s,
            reason="age",
        )

    def _release(self, ticket: int) -> None:
        now_ns = time.monotonic_ns()
        with self._lock:
            self._inflight.pop(ticket, None)
            self._publish_locked(now_ns)

    def wait_idle(self, grace_s: float) -> bool:
        """Busy-wait (coarsely) until no requests are in flight.

        Used by drain: returns True once idle, False when ``grace_s``
        expired first.  Polling at 10 ms is fine here — drain happens
        once per process lifetime.
        """
        deadline = time.monotonic() + max(0.0, grace_s)
        while self.depth > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)
        return True


class _Ticket:
    """One admitted request; releasing is idempotent."""

    __slots__ = ("_controller", "_id", "_released")

    def __init__(self, controller: AdmissionController, ticket_id: int) -> None:
        self._controller = controller
        self._id = ticket_id
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._id)

    def __enter__(self) -> "_Ticket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
