"""Tests for the storage-tier cost model."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    DISK,
    MEMORY,
    TAPE,
    PhysicalDesign,
    StorageTier,
    gzip_design,
    raw_design,
    svdd_design,
)
from repro.exceptions import ConfigurationError


class TestStorageTier:
    def test_access_latency_formula(self):
        tier = StorageTier("t", seek_ms=10.0, mb_per_s=100.0)
        # 1 MB at 100 MB/s = 10 ms transfer + 10 ms seek.
        assert tier.access_ms(1_000_000) == pytest.approx(20.0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            StorageTier("t", seek_ms=-1.0, mb_per_s=10.0)
        with pytest.raises(ConfigurationError):
            StorageTier("t", seek_ms=1.0, mb_per_s=0.0)

    def test_tier_ordering(self):
        """Memory << disk << tape for a small random access."""
        block = 4096
        assert MEMORY.access_ms(block) < DISK.access_ms(block) < TAPE.access_ms(block)


class TestDesigns:
    N, M = 100_000, 366  # the paper's phone100K

    def test_tape_cell_query_is_next_to_impossible(self):
        """The paper's opening claim, in numbers: minutes per cell."""
        design = raw_design(self.N, self.M, TAPE)
        assert design.cell_query_ms() > 60_000  # over a minute

    def test_disk_cell_query_is_milliseconds(self):
        design = raw_design(self.N, self.M, DISK)
        assert design.cell_query_ms() < 50

    def test_gzip_wholesale_penalty(self):
        """Even on disk, monolithic compression pays a full scan per query."""
        gzip = gzip_design(self.N, self.M, DISK)
        raw = raw_design(self.N, self.M, DISK)
        assert gzip.cell_query_ms() > 100 * raw.cell_query_ms()

    def test_svdd_matches_raw_disk_latency_at_fraction_of_space(self):
        """The paper's pitch: ~1 access like raw, ~10x less space."""
        raw = raw_design(self.N, self.M, DISK)
        svdd = svdd_design(self.N, self.M, cutoff=35, num_deltas=100_000, tier=DISK)
        assert svdd.cell_query_ms() == pytest.approx(raw.cell_query_ms(), rel=0.2)
        assert svdd.total_bytes < raw.total_bytes / 8

    def test_svdd_fits_in_memory_when_raw_does_not(self):
        """The enabling move: 10:1 compression can turn a disk-resident
        dataset into a memory-resident one."""
        svdd = svdd_design(self.N, self.M, cutoff=35, num_deltas=100_000, tier=MEMORY)
        raw = raw_design(self.N, self.M, DISK)
        assert svdd.cell_query_ms() < raw.cell_query_ms() / 1000

    def test_aggregate_scales_with_rows_touched(self):
        design = raw_design(self.N, self.M, DISK)
        assert design.aggregate_query_ms(1000) == pytest.approx(
            1000 * DISK.access_ms(self.M * 8)
        )

    def test_invalid_gzip_ratio(self):
        with pytest.raises(ConfigurationError):
            gzip_design(10, 10, DISK, ratio=0.0)

    def test_wholesale_design_ignores_cell_bytes(self):
        design = PhysicalDesign(
            "x", DISK, total_bytes=10**9, cell_access_bytes=8, wholesale=True
        )
        assert design.cell_query_ms() == pytest.approx(DISK.scan_ms(10**9))
