"""Piecewise Aggregate Approximation (PAA).

A time-series representation from the same era's literature: each row
is divided into ``k`` equal-width segments and each segment is replaced
by its mean.  Reconstruction is a step function.  Space is ``N * k * b``
— identical accounting to the per-row spectral methods, making PAA a
natural extra competitor for the Fig. 6 sweep: it handles level shifts
better than low-frequency DCT but, like all row-local methods, cannot
share structure *across* customers the way SVD does.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import BYTES_PER_VALUE
from repro.methods.base import CompressionMethod, FittedModel


class PAAModel(FittedModel):
    """Segment means per row plus the segment layout."""

    def __init__(self, means: np.ndarray, boundaries: np.ndarray, num_cols: int) -> None:
        super().__init__(means.shape[0], num_cols)
        self._means = means
        self._boundaries = boundaries  # segment start offsets, len k+1

    @property
    def segments_per_row(self) -> int:
        return int(self._means.shape[1])

    def reconstruct_row(self, row: int) -> np.ndarray:
        self._check_cell(row, 0)
        out = np.empty(self._num_cols)
        for seg in range(self.segments_per_row):
            start, stop = self._boundaries[seg], self._boundaries[seg + 1]
            out[start:stop] = self._means[row, seg]
        return out

    def reconstruct_cell(self, row: int, col: int) -> float:
        self._check_cell(row, col)
        seg = int(np.searchsorted(self._boundaries, col, side="right") - 1)
        return float(self._means[row, seg])

    def reconstruct(self) -> np.ndarray:
        widths = np.diff(self._boundaries)
        return np.repeat(self._means, widths, axis=1)

    def space_bytes(self) -> int:
        return self._means.size * BYTES_PER_VALUE


class PAAMethod(CompressionMethod):
    """Equal-width segment-mean compression; ``k = floor(s * M)`` segments."""

    name = "paa"

    def fit(self, matrix: np.ndarray, budget_fraction: float) -> PAAModel:
        arr = self._validate(matrix, budget_fraction)
        num_rows, num_cols = arr.shape
        k = min(max(1, int(budget_fraction * num_cols)), num_cols)
        # Spread any remainder across the leading segments so widths
        # differ by at most one column.
        boundaries = np.linspace(0, num_cols, k + 1).round().astype(np.int64)
        means = np.empty((num_rows, k))
        for seg in range(k):
            start, stop = boundaries[seg], boundaries[seg + 1]
            means[:, seg] = arr[:, start:stop].mean(axis=1)
        return PAAModel(means, boundaries, num_cols)
