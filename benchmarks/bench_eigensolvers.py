"""Substrate bench: the interchangeable symmetric eigensolvers.

The two-pass algorithm's in-memory step is the eigendecomposition of
the M x M Gram matrix.  This bench compares the three solvers the
library ships — LAPACK (numpy), the from-scratch cyclic Jacobi, and
deflated power iteration for top-k — on a real Gram matrix, reporting
wall time and agreement with LAPACK.

Expected shape: all three agree to tight tolerance; LAPACK is fastest;
power iteration wins when only a few components are needed relative to
a full Jacobi solve.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import emit, format_table
from repro.core import compute_gram
from repro.linalg import (
    JacobiEigensolver,
    NumpyEigensolver,
    PowerIterationEigensolver,
    TridiagonalEigensolver,
)


def test_eigensolvers(stocks381, benchmark):
    gram = compute_gram(stocks381)  # 128 x 128
    k = 10

    reference = NumpyEigensolver().decompose_top(gram, k)
    rows = []
    agreements = {}
    for name, solver in (
        ("numpy (LAPACK)", NumpyEigensolver()),
        ("jacobi (from scratch)", JacobiEigensolver()),
        ("householder+QL (from scratch)", TridiagonalEigensolver()),
        ("power iteration", PowerIterationEigensolver()),
    ):
        start = time.perf_counter()
        result = solver.decompose_top(gram.copy(), k)
        elapsed = time.perf_counter() - start
        deviation = float(
            np.abs(result.values - reference.values).max()
            / max(reference.values[0], 1e-12)
        )
        agreements[name] = deviation
        rows.append([name, f"{elapsed * 1e3:.1f}", f"{deviation:.2e}"])
    lines = format_table(
        f"Eigensolvers on the stocks Gram matrix (128 x 128, top {k})",
        ["solver", "ms", "max rel. eigenvalue deviation"],
        rows,
    )
    emit("eigensolvers", lines)

    assert all(dev < 1e-6 for dev in agreements.values()), agreements

    benchmark(lambda: NumpyEigensolver().decompose_top(gram, k))
