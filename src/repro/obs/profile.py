"""Per-query execution profiles.

A :class:`QueryProfile` is the paper's cost model made observable for
one query: which path answered it (factor space, row streaming, or a
single-cell probe), how many backend rows it fetched, how many buffer
pool page accesses and physical reads those cost, and where the
nanoseconds went (factor gather / GEMM / delta folding / streaming).

The engine only builds profiles while the process-wide registry is
enabled; a disabled run returns results whose ``profile`` is None and
pays nothing beyond the guard branch.

:class:`StatDelta` is the capture half: it snapshots a backend's pool,
pager and delta-index counters before the query and diffs them after,
duck-typed so the raw :class:`~repro.storage.matrix_store.MatrixStore`
(``pool_stats``/``io_stats``) and the compressed
:class:`~repro.core.store.CompressedMatrix`
(``u_pool_stats``/``u_io_stats``/``delta_index``) both work, and purely
in-memory backends degrade to all-zero I/O sections.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = ["QueryProfile", "StatDelta"]


@dataclass(frozen=True)
class QueryProfile:
    """Execution accounting for one answered query."""

    #: 'factor' | 'stream' | 'cell' — the path that produced the value.
    path: str
    #: Aggregate function, or None for cell queries.
    function: str | None
    #: Cells the selection covers.
    cells: int
    #: Backend row fetches the evaluation performed.
    rows_fetched: int
    #: Buffer-pool page accesses during the query (hits+misses+bypasses).
    pages_read: int
    pool_hits: int = 0
    pool_misses: int = 0
    pool_bypasses: int = 0
    pool_evictions: int = 0
    #: Physical pager reads / bytes under those pool accesses.
    io_reads: int = 0
    io_bytes_read: int = 0
    #: Delta-index probes resolved during the query.
    delta_lookups: int = 0
    delta_keys_probed: int = 0
    #: Wall time of the whole query and of its phases, in nanoseconds.
    total_ns: int = 0
    gather_ns: int = 0
    gemm_ns: int = 0
    delta_ns: int = 0
    stream_ns: int = 0
    #: Backend class name, for context in dumped profiles.
    backend: str = ""
    #: Achieved error bound of the route that answered the query: 0.0
    #: for exact routes, the model's stored RMSPE estimate for an
    #: SVD-only answer, None when that estimate is unknown.
    error_bound: float | None = 0.0
    #: Pages the planner predicted the chosen route would touch; pair
    #: with ``pages_read`` (measured) to audit the cost model.  None
    #: for unplanned (cell) queries.
    predicted_pages: int | None = None
    #: Trace id of the span tree this query ran under — the join key
    #: between profiles, structured log lines, and (for process-mode
    #: queries) the worker's grafted span tree.
    trace_id: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def pool_hit_rate(self) -> float:
        """Fraction of this query's page accesses served from memory."""
        return self.pool_hits / self.pages_read if self.pages_read else 0.0

    def to_dict(self) -> dict:
        """All fields plus the derived ``pool_hit_rate``, JSON-ready."""
        out = asdict(self)
        out["pool_hit_rate"] = self.pool_hit_rate
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """The profile serialized as JSON (the CLI ``--profile`` output)."""
        return json.dumps(self.to_dict(), indent=indent, default=str)


def _pool_stats(backend):
    return getattr(backend, "u_pool_stats", None) or getattr(
        backend, "pool_stats", None
    )


def _io_stats(backend):
    return getattr(backend, "u_io_stats", None) or getattr(backend, "io_stats", None)


def _delta_stats(backend) -> dict | None:
    index = getattr(backend, "delta_index", None)
    return getattr(index, "stats", None)


class StatDelta:
    """Snapshot a backend's counters now; diff them after the query."""

    __slots__ = ("_pool", "_io", "_delta", "_before")

    def __init__(self, backend) -> None:
        self._pool = _pool_stats(backend)
        self._io = _io_stats(backend)
        self._delta = _delta_stats(backend)
        before: dict[str, int] = {}
        if self._pool is not None:
            before["hits"] = self._pool.hits
            before["misses"] = self._pool.misses
            before["bypasses"] = self._pool.bypasses
            before["evictions"] = self._pool.evictions
        if self._io is not None:
            before["reads"] = self._io.reads
            before["bytes_read"] = self._io.bytes_read
        if self._delta is not None:
            before["lookups"] = self._delta.get("lookups", 0)
            before["keys_probed"] = self._delta.get("keys_probed", 0)
        self._before = before

    def collect(self) -> dict[str, int]:
        """Counter increments since construction, keyed for QueryProfile."""
        out = {
            "pool_hits": 0,
            "pool_misses": 0,
            "pool_bypasses": 0,
            "pool_evictions": 0,
            "pages_read": 0,
            "io_reads": 0,
            "io_bytes_read": 0,
            "delta_lookups": 0,
            "delta_keys_probed": 0,
        }
        before = self._before
        if self._pool is not None:
            out["pool_hits"] = self._pool.hits - before["hits"]
            out["pool_misses"] = self._pool.misses - before["misses"]
            out["pool_bypasses"] = self._pool.bypasses - before["bypasses"]
            out["pool_evictions"] = self._pool.evictions - before["evictions"]
            out["pages_read"] = (
                out["pool_hits"] + out["pool_misses"] + out["pool_bypasses"]
            )
        if self._io is not None:
            out["io_reads"] = self._io.reads - before["reads"]
            out["io_bytes_read"] = self._io.bytes_read - before["bytes_read"]
        if self._delta is not None:
            out["delta_lookups"] = self._delta.get("lookups", 0) - before["lookups"]
            out["delta_keys_probed"] = (
                self._delta.get("keys_probed", 0) - before["keys_probed"]
            )
        return out
