"""Tests for the column-standardization wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import patients_matrix
from repro.exceptions import BudgetError
from repro.methods import (
    DCTMethod,
    SVDDMethod,
    SVDMethod,
    StandardizedMethod,
)
from repro.metrics import rmspe


@pytest.fixture(scope="module")
def records():
    return patients_matrix(500)


def per_column_error(model, data: np.ndarray) -> float:
    """Mean per-column absolute error, each column in its own std units
    — the metric that matters when columns are different quantities."""
    recon = model.reconstruct()
    stds = np.where(data.std(axis=0) > 0, data.std(axis=0), 1.0)
    return float(np.mean(np.abs(recon - data).mean(axis=0) / stds))


class TestCorrectness:
    def test_cell_matches_row(self, records):
        model = StandardizedMethod(SVDMethod()).fit(records, 0.4)
        assert model.reconstruct_cell(7, 3) == pytest.approx(
            model.reconstruct_row(7)[3]
        )

    def test_full_matches_rows(self, records):
        model = StandardizedMethod(SVDMethod()).fit(records, 0.4)
        assert np.allclose(model.reconstruct()[11], model.reconstruct_row(11))

    def test_constant_column_reconstructed_exactly(self, rng):
        x = rng.random((60, 8)) * 10
        x[:, 3] = 42.0  # zero-variance column
        model = StandardizedMethod(SVDMethod()).fit(x, 0.6)
        assert np.allclose(model.reconstruct()[:, 3], 42.0, atol=1e-9)

    def test_low_rank_data_near_exact(self, rng):
        """With enough components for the (standardized) rank, the
        round-trip through standardization is exact."""
        units = np.array([1, 10, 100, 1000, 1, 1, 1, 1, 1, 1], dtype=float)
        low_rank = rng.random((40, 3)) @ rng.random((3, 10))
        x = low_rank * units
        model = StandardizedMethod(SVDMethod()).fit(x, 0.95)
        assert rmspe(x, model.reconstruct()) < 1e-8


class TestBudget:
    def test_statistics_charged_to_budget(self, records):
        model = StandardizedMethod(SVDMethod()).fit(records, 0.4)
        assert model.space_fraction() <= 0.4 + 1e-12
        inner_bytes = model.inner.space_bytes()
        assert model.space_bytes() == inner_bytes + 2 * records.shape[1] * 8

    def test_budget_too_small_for_statistics(self, rng):
        x = rng.random((4, 100))
        # stats cost 2*100*8 = 1600 B; matrix is 4*100*8 = 3200 B;
        # a 40% budget (1280 B) cannot even hold them.
        with pytest.raises(BudgetError):
            StandardizedMethod(SVDMethod()).fit(x, 0.40)


class TestHeterogeneousBenefit:
    def test_improves_per_column_error_on_patients(self, records):
        """The point of standardizing: small-unit columns stop being
        sacrificed to large-unit ones."""
        budget = 0.30
        plain = per_column_error(SVDMethod().fit(records, budget), records)
        standardized = per_column_error(
            StandardizedMethod(SVDMethod()).fit(records, budget), records
        )
        assert standardized < plain

    def test_global_rmspe_may_prefer_plain(self, records):
        """The flip side, stated honestly: global RMSPE is dominated by
        the large-unit columns, which plain SVD prioritizes."""
        budget = 0.30
        plain = rmspe(records, SVDMethod().fit(records, budget).reconstruct())
        standardized = rmspe(
            records,
            StandardizedMethod(SVDMethod()).fit(records, budget).reconstruct(),
        )
        assert plain <= standardized * 1.5  # same ballpark, plain often ahead

    def test_composes_with_any_method(self, records):
        for inner in (SVDDMethod(), DCTMethod()):
            model = StandardizedMethod(inner).fit(records, 0.5)
            assert model.reconstruct().shape == records.shape
            assert model.space_fraction() <= 0.5 + 1e-12

    def test_name_reflects_composition(self):
        assert StandardizedMethod(SVDMethod()).name == "std+svd"
