"""Tests for the clustering compression methods."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.cluster.hierarchy as sch
import scipy.spatial.distance as ssd

from repro.exceptions import BudgetError, ConfigurationError, DatasetError
from repro.methods import (
    HierarchicalClusteringMethod,
    KMeansMethod,
    clusters_for_budget,
    complete_linkage_merges,
    cut_merges,
)
from repro.metrics import rmspe


@pytest.fixture(scope="module")
def blobs():
    """Three well-separated Gaussian blobs."""
    rng = np.random.default_rng(3)
    centers = np.array([[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]])
    points = np.vstack(
        [center + rng.standard_normal((30, 2)) * 0.5 for center in centers]
    )
    return points


class TestNNChain:
    def test_merge_count(self, blobs):
        merges = complete_linkage_merges(blobs)
        assert len(merges) == blobs.shape[0] - 1

    def test_heights_match_scipy(self, blobs):
        """Complete-linkage dendrogram heights must equal scipy's."""
        ours = sorted(height for _a, _b, height in complete_linkage_merges(blobs))
        ref = sorted(sch.linkage(ssd.pdist(blobs), method="complete")[:, 2])
        assert np.allclose(ours, ref, atol=1e-9)

    def test_single_point(self):
        assert complete_linkage_merges(np.ones((1, 3))) == []

    def test_two_points(self):
        merges = complete_linkage_merges(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert len(merges) == 1
        assert merges[0][2] == pytest.approx(5.0)


class TestCutMerges:
    def test_recovers_blobs(self, blobs):
        merges = complete_linkage_merges(blobs)
        labels = cut_merges(merges, blobs.shape[0], 3)
        # Each true blob must be a single cluster.
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:60])) == 1
        assert len(set(labels[60:])) == 1
        assert len(set(labels.tolist())) == 3

    def test_k_equals_n(self, blobs):
        labels = cut_merges(complete_linkage_merges(blobs), blobs.shape[0], 90)
        assert len(set(labels.tolist())) == 90

    def test_k_equals_one(self, blobs):
        labels = cut_merges(complete_linkage_merges(blobs), blobs.shape[0], 1)
        assert len(set(labels.tolist())) == 1

    def test_invalid_k(self, blobs):
        merges = complete_linkage_merges(blobs)
        with pytest.raises(ConfigurationError):
            cut_merges(merges, blobs.shape[0], 0)
        with pytest.raises(ConfigurationError):
            cut_merges(merges, blobs.shape[0], 91)


class TestBudget:
    def test_formula(self):
        # budget 10% of 1000 x 100 = 80_000 B; refs cost 8_000 B;
        # each representative costs 800 B -> 90 clusters.
        assert clusters_for_budget(1000, 100, 0.10) == 90

    def test_too_small(self):
        with pytest.raises(BudgetError):
            clusters_for_budget(1000, 100, 0.001)

    def test_full_budget(self):
        # budget 400 B - 40 B of references = 360 B -> 4 representatives
        # of 80 B each.  (The k <= N cap can never bind at fractions <= 1:
        # it would require more than 100% of the original space.)
        assert clusters_for_budget(5, 10, 1.0) == 4


class TestHierarchicalMethod:
    def test_reconstruction_is_centroid(self, blobs):
        model = HierarchicalClusteringMethod().fit(blobs, 0.8)
        labels = model.assignments
        for cluster in set(labels.tolist()):
            members = blobs[labels == cluster]
            centroid = members.mean(axis=0)
            for idx in np.flatnonzero(labels == cluster)[:3]:
                assert np.allclose(model.reconstruct_row(int(idx)), centroid)

    def test_space_within_budget(self, phone_small):
        model = HierarchicalClusteringMethod().fit(phone_small, 0.10)
        assert model.space_fraction() <= 0.10 + 1e-12

    def test_scale_guard(self, rng):
        """Reproduces the paper: HC cannot scale past a few thousand rows."""
        method = HierarchicalClusteringMethod(max_rows=100)
        with pytest.raises(DatasetError):
            method.fit(rng.standard_normal((101, 4)), 0.5)

    def test_well_separated_data_perfectly_compressed(self, blobs):
        """With k >= true cluster count, error is just within-blob spread."""
        model = HierarchicalClusteringMethod().fit(blobs, 0.8)
        assert rmspe(blobs, model.reconstruct()) < 0.10

    def test_deterministic(self, phone_small):
        a = HierarchicalClusteringMethod().fit(phone_small, 0.05)
        b = HierarchicalClusteringMethod().fit(phone_small, 0.05)
        assert np.array_equal(a.assignments, b.assignments)


class TestKMeansMethod:
    def test_recovers_blobs(self, blobs):
        model = KMeansMethod(seed=0).fit(blobs, 0.8)
        assert rmspe(blobs, model.reconstruct()) < 0.10

    def test_deterministic_given_seed(self, phone_small):
        a = KMeansMethod(seed=5).fit(phone_small, 0.05)
        b = KMeansMethod(seed=5).fit(phone_small, 0.05)
        assert np.array_equal(a.assignments, b.assignments)

    def test_space_within_budget(self, phone_small):
        model = KMeansMethod().fit(phone_small, 0.08)
        assert model.space_fraction() <= 0.08 + 1e-12

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            KMeansMethod(max_iterations=0)

    def test_scales_beyond_hc_limit(self, rng):
        """k-means handles sizes where the quadratic HC refuses."""
        big = rng.standard_normal((500, 10))
        method = KMeansMethod(max_iterations=5)
        model = method.fit(big, 0.3)
        assert model.reconstruct().shape == big.shape


class TestVQModel:
    def test_num_clusters(self, phone_small):
        model = KMeansMethod().fit(phone_small, 0.10)
        assert model.num_clusters == clusters_for_budget(*phone_small.shape, 0.10)

    def test_assignments_read_only(self, phone_small):
        model = KMeansMethod().fit(phone_small, 0.10)
        with pytest.raises(ValueError):
            model.assignments[0] = 99
