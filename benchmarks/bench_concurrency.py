"""Concurrent serving: aggregate throughput vs worker count.

Two serving strategies over one ``CompressedMatrix``:

- **threads** (``QueryExecutor``): safe shared-backend serving, but
  Python-side dispatch serializes on the GIL, so thread throughput is
  bounded near the sequential baseline — the bench records the curve
  and guards against collapse, it does not claim thread scaling;
- **processes** (``ProcessQueryExecutor``): each worker opens the
  model itself and maps ``u.mat`` via mmap (one physical copy in page
  cache for the whole pool), so throughput genuinely scales with
  cores.  This is where the scaling claim lives: >2x at 4 workers,
  asserted when the process may actually run on >=4 CPUs.

Also measured: the single-worker regression guard (the thread executor
at one worker must stay close to a plain sequential
:class:`QueryEngine` loop) and the parallel build
(``build_compressed(jobs=4)`` vs ``jobs=1``).

Scaling assertions are gated on **usable** cores —
``usable_cpu_count()`` reads CPU affinity, so a cgroup-pinned CI
container records the numbers without asserting a speedup the kernel
scheduler makes impossible.  All answers (thread, process, sequential)
are compared with ``==``: the strategies must be bit-identical, not
approximately equal.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import emit, emit_json, format_table
from repro.core import CompressedMatrix, SVDDCompressor, build_compressed
from repro.obs import Histogram
from repro.obs.bench import latency_summary_ms
from repro.query import (
    AggregateQuery,
    ProcessQueryExecutor,
    QueryEngine,
    QueryExecutor,
    Selection,
    usable_cpu_count,
)
from repro.storage import MatrixStore

WORKER_SWEEP = (1, 2, 4, 8)
PROC_WORKER_SWEEP = (1, 2, 4)
QUERIES = 240
#: Minimum process-mode speedup at 4 workers, asserted only when the
#: affinity mask actually allows 4-way parallelism.
PROC_SCALING_FLOOR = 2.0
#: The executor at one worker may cost at most this slowdown factor
#: over a plain sequential engine loop (asserted loosely: wall-clock
#: on shared CI runners is noisy).
SINGLE_WORKER_OVERHEAD_FLOOR = 0.60


def _aggregate_workload(shape: tuple[int, int], count: int) -> list[AggregateQuery]:
    """Factor-path aggregates over random rectangles (the GEMM-heavy
    shape that actually exercises parallel scaling)."""
    rng = np.random.default_rng(17)
    rows, cols = shape
    queries = []
    for index in range(count):
        r0 = int(rng.integers(0, rows - 64))
        c0 = int(rng.integers(0, cols - 32))
        height = int(rng.integers(32, 64))
        width = int(rng.integers(16, 32))
        function = ("sum", "avg", "stddev")[index % 3]
        queries.append(
            AggregateQuery(
                function,
                Selection(rows=range(r0, r0 + height), cols=range(c0, c0 + width)),
            )
        )
    return queries


def _observe_latencies(pool, queries, histogram: Histogram) -> None:
    """Record each query's submit-to-done wall time into ``histogram``.

    Queries are submitted all at once (the benches' normal concurrency
    shape), so the recorded latencies include queueing — the figure a
    client of the pool actually observes.
    """
    futures = []
    for query in queries:
        begin = time.perf_counter_ns()
        future = pool.submit(query)
        future.add_done_callback(
            lambda _f, begin=begin: histogram.observe(
                time.perf_counter_ns() - begin
            )
        )
        futures.append(future)
    for future in futures:
        future.result()


def test_concurrent_query_throughput(tmp_path_factory, phone2000, benchmark):
    root = tmp_path_factory.mktemp("concurrency")
    model = SVDDCompressor(budget_fraction=0.10).fit(phone2000)
    CompressedMatrix.save(model, root / "model").close()
    queries = _aggregate_workload(phone2000.shape, QUERIES)

    store = CompressedMatrix.open(root / "model", pool_capacity=256)

    # Per-route client-observed latency distributions (schema-2 block).
    latency = {route: Histogram() for route in ("sequential", "thread_4w", "process_4w")}

    # Sequential baseline: one engine, one thread, no pool machinery.
    engine = QueryEngine(store)
    start = time.perf_counter()
    expected = []
    for query in queries:
        begin = time.perf_counter_ns()
        expected.append(engine.aggregate(query).value)
        latency["sequential"].observe(time.perf_counter_ns() - begin)
    sequential_qps = QUERIES / (time.perf_counter() - start)

    rows = []
    qps_by_workers = {}
    for workers in WORKER_SWEEP:
        with QueryExecutor(store, max_workers=workers) as pool:
            pool.run_batch(queries[:16])  # warm the U pool and the threads
            report = pool.run_batch(queries)
        assert [r.value for r in report.results] == expected
        qps_by_workers[workers] = report.throughput_qps
        rows.append(
            [
                str(workers),
                f"{report.throughput_qps:,.0f}",
                f"{report.throughput_qps / qps_by_workers[1]:.2f}x",
            ]
        )

    # Latency pass at 4 thread workers: submit-to-result wall time per
    # query, queueing included — what a client actually waits.
    with QueryExecutor(store, max_workers=4) as pool:
        pool.run_batch(queries[:16])
        _observe_latencies(pool, queries, latency["thread_4w"])
    store.close()

    speedup_4 = qps_by_workers[4] / qps_by_workers[1]
    single_worker_ratio = qps_by_workers[1] / sequential_qps

    # Process mode: workers map u.mat themselves; answers must stay
    # bit-identical to the sequential loop.  Chunked submission
    # amortizes query pickling/IPC across worker round trips.
    usable_cpus = usable_cpu_count()
    proc_rows = []
    qps_proc = {}
    for workers in PROC_WORKER_SWEEP:
        with ProcessQueryExecutor(root / "model", max_workers=workers) as pool:
            pool.run_batch(queries[:16])  # bootstrap workers, warm the maps
            report = pool.run_batch(queries)
        assert [r.value for r in report.results] == expected
        qps_proc[workers] = report.throughput_qps
        proc_rows.append(
            [
                str(workers),
                f"{report.throughput_qps:,.0f}",
                f"{report.throughput_qps / qps_proc[1]:.2f}x",
            ]
        )
    speedup_4_proc = qps_proc[4] / qps_proc[1]

    # Same latency pass over the process pool (pickle/IPC included).
    with ProcessQueryExecutor(root / "model", max_workers=4) as pool:
        pool.run_batch(queries[:16])
        _observe_latencies(pool, queries, latency["process_4w"])

    # Parallel build on a disk-resident source.
    source = MatrixStore.create(root / "raw.mat", phone2000)
    start = time.perf_counter()
    build_compressed(source, root / "build1", 0.10, jobs=1).close()
    build_s_jobs1 = time.perf_counter() - start
    start = time.perf_counter()
    build_compressed(source, root / "build4", 0.10, jobs=4).close()
    build_s_jobs4 = time.perf_counter() - start
    source.close()
    build_speedup = build_s_jobs1 / build_s_jobs4 if build_s_jobs4 > 0 else 0.0

    cpu_count = os.cpu_count() or 1
    lines = format_table(
        f"Aggregate throughput vs thread workers "
        f"({QUERIES} queries, phone2000, {cpu_count} cpus, "
        f"{usable_cpus} usable)",
        ["workers", "queries/s", "speedup"],
        rows,
    )
    lines.append("")
    lines.extend(
        format_table(
            "Aggregate throughput vs process workers (shared mmap model)",
            ["workers", "queries/s", "speedup"],
            proc_rows,
        )
    )
    lines.append("")
    lines.append(f"sequential engine baseline: {sequential_qps:,.0f} q/s")
    lines.append(f"1-worker executor / sequential: {single_worker_ratio:.2f}x")
    lines.append(
        f"build jobs=1: {build_s_jobs1:.2f}s, jobs=4: {build_s_jobs4:.2f}s "
        f"({build_speedup:.2f}x)"
    )
    emit("concurrency", lines)
    emit_json(
        "concurrency",
        params={
            "dataset": "phone2000",
            "queries": QUERIES,
            "workers": list(WORKER_SWEEP),
            "proc_workers": list(PROC_WORKER_SWEEP),
            "budget_fraction": 0.10,
            "pool_capacity": 256,
            "cpu_count": cpu_count,
            "usable_cpus": usable_cpus,
        },
        metrics={
            **{
                f"qps_{workers}w": round(qps, 1)
                for workers, qps in qps_by_workers.items()
            },
            **{
                f"qps_{workers}w_proc": round(qps, 1)
                for workers, qps in qps_proc.items()
            },
            "sequential_qps": round(sequential_qps, 1),
            "single_worker_ratio": round(single_worker_ratio, 4),
            "speedup_4w": round(speedup_4, 4),
            "speedup_4w_proc": round(speedup_4_proc, 4),
            "build_s_jobs1": round(build_s_jobs1, 4),
            "build_s_jobs4": round(build_s_jobs4, 4),
            "build_speedup": round(build_speedup, 4),
            "latency_ms": {
                route: latency_summary_ms(hist)
                for route, hist in latency.items()
            },
        },
    )

    # The executor must not tax the single-client case.  (Loose bound:
    # shared runners are noisy; the structural single-thread guard is
    # the storage suite's exact-semantics tests.)
    assert single_worker_ratio >= SINGLE_WORKER_OVERHEAD_FLOOR
    # The scaling claim lives in process mode: thread dispatch
    # serializes on the GIL, so threads only get a no-collapse guard.
    if usable_cpus >= 4:
        assert speedup_4_proc >= PROC_SCALING_FLOOR
    # More workers must never corrupt results or collapse throughput.
    assert qps_by_workers[8] >= qps_by_workers[1] * 0.5
    assert qps_proc[4] >= qps_proc[1] * 0.5

    store = CompressedMatrix.open(root / "model", pool_capacity=256)
    with QueryExecutor(store, max_workers=4) as pool:
        benchmark(lambda: pool.run_batch(queries[:32]))
    store.close()
