"""Figure 10: RMSPE vs storage for increasing dataset sizes (SVDD on
'phone100K' row subsets).

Expected shape: the error-vs-space curves are nearly identical for all
N — the method's accuracy does not degrade with dataset size.  The
paper runs N = 1,000 ... 100,000; the default ladder here stops at
20,000 so the harness finishes in CI time (set REPRO_BENCH_SCALE=full
for the full ladder).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import emit, format_table, scaleup_ladder
from repro.core import SVDDCompressor
from repro.data import phone_matrix
from repro.metrics import rmspe

BUDGETS = (0.02, 0.05, 0.10, 0.20)


def test_fig10_scaleup(benchmark):
    ladder = scaleup_ladder()
    header = ["N"] + [f"s={budget:.0%}" for budget in BUDGETS]
    rows = []
    per_budget_errors: dict[float, list[float]] = {budget: [] for budget in BUDGETS}
    for n in ladder:
        data = phone_matrix(n)
        cells = [str(n)]
        for budget in BUDGETS:
            model = SVDDCompressor(budget_fraction=budget).fit(data)
            error = rmspe(data, model.reconstruct())
            per_budget_errors[budget].append(error)
            cells.append(f"{error:.4f}")
        rows.append(cells)
    lines = format_table(
        "Figure 10: RMSPE vs space for increasing N (SVDD, phone data)",
        header,
        rows,
    )
    emit("fig10_scaleup", lines)

    # Homogeneity across N: at each budget the spread across the ladder
    # stays within a small factor (the curves 'overlap' in the paper).
    for budget, errors in per_budget_errors.items():
        assert max(errors) / min(errors) < 2.5, (budget, errors)

    data = phone_matrix(ladder[1])
    benchmark(lambda: SVDDCompressor(budget_fraction=0.10).fit(data))
