"""Tests for robust SVD (future-work item b): winsorized row influence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVDCompressor, SVDDCompressor
from repro.core.robust import (
    RobustSVDCompressor,
    RobustSVDDCompressor,
    winsorized_gram,
)
from repro.exceptions import ConfigurationError, ShapeError
from repro.metrics import rmspe


@pytest.fixture(scope="module")
def tilted_matrix():
    """Low-rank bulk plus one extreme row that tilts plain SVD's axes
    (the Appendix A 'distraction' scenario)."""
    rng = np.random.default_rng(21)
    u = rng.random((300, 2)) * 4
    v = rng.random((2, 50)) + 0.5
    x = u @ v + rng.standard_normal((300, 50)) * 0.05
    x[13] = rng.random(50) * 8000.0  # one enormous customer
    return x


@pytest.fixture(scope="module")
def bulk_mask(tilted_matrix):
    mask = np.ones(tilted_matrix.shape[0], dtype=bool)
    mask[13] = False
    return mask


class TestWinsorizedGram:
    def test_no_outliers_equals_plain_gram(self, rng):
        x = rng.standard_normal((40, 8))
        # With the clip at the max norm, nothing is rescaled.
        assert np.allclose(winsorized_gram(x, 100.0), x.T @ x, atol=1e-9)

    def test_outlier_influence_capped(self, tilted_matrix):
        plain = tilted_matrix.T @ tilted_matrix
        robust = winsorized_gram(tilted_matrix, 95.0)
        # The outlier dominates the plain Gram; the robust one is far smaller.
        assert np.abs(robust).max() < np.abs(plain).max() / 10

    def test_zero_matrix(self):
        x = np.zeros((5, 3))
        assert np.allclose(winsorized_gram(x, 99.0), 0.0)

    def test_symmetric_output(self, tilted_matrix):
        gram = winsorized_gram(tilted_matrix, 90.0)
        assert np.array_equal(gram, gram.T)


class TestConstruction:
    def test_requires_one_sizing_arg(self):
        with pytest.raises(ConfigurationError):
            RobustSVDCompressor()
        with pytest.raises(ConfigurationError):
            RobustSVDCompressor(k=2, budget_fraction=0.1)

    def test_invalid_clip(self):
        with pytest.raises(ConfigurationError):
            RobustSVDCompressor(k=2, clip_percentile=40.0)
        with pytest.raises(ConfigurationError):
            RobustSVDCompressor(k=2, clip_percentile=101.0)

    def test_rejects_bad_input(self):
        with pytest.raises(ShapeError):
            RobustSVDCompressor(k=2).fit(np.ones(5))


class TestRobustness:
    def test_bulk_error_improves_k1(self, tilted_matrix, bulk_mask):
        """At k=1 plain SVD's axis points at the outlier; robust doesn't."""
        plain = SVDCompressor(k=1).fit(tilted_matrix)
        robust = RobustSVDCompressor(k=1, clip_percentile=95).fit(tilted_matrix)
        bulk = tilted_matrix[bulk_mask]
        plain_err = rmspe(bulk, plain.reconstruct()[bulk_mask])
        robust_err = rmspe(bulk, robust.reconstruct()[bulk_mask])
        assert robust_err < plain_err / 3

    def test_bulk_error_improves_k2(self, tilted_matrix, bulk_mask):
        plain = SVDCompressor(k=2).fit(tilted_matrix)
        robust = RobustSVDCompressor(k=2, clip_percentile=95).fit(tilted_matrix)
        bulk = tilted_matrix[bulk_mask]
        assert rmspe(bulk, robust.reconstruct()[bulk_mask]) < rmspe(
            bulk, plain.reconstruct()[bulk_mask]
        )

    def test_clean_data_unchanged(self, low_rank):
        """Without outliers, robust and plain axes agree."""
        plain = SVDCompressor(k=3).fit(low_rank)
        robust = RobustSVDCompressor(k=3, clip_percentile=99).fit(low_rank)
        assert np.allclose(
            robust.reconstruct(), plain.reconstruct(), atol=1e-6
        )

    def test_budget_sizing(self, phone_small):
        model = RobustSVDCompressor(budget_fraction=0.10).fit(phone_small)
        assert model.space_fraction() <= 0.10 + 1e-12

    def test_eigenvalues_sorted(self, tilted_matrix):
        model = RobustSVDCompressor(k=3, clip_percentile=95).fit(tilted_matrix)
        assert np.all(np.diff(model.eigenvalues) <= 1e-9)


class TestRobustSVDD:
    def test_space_within_budget(self, tilted_matrix):
        model = RobustSVDDCompressor(budget_fraction=0.10).fit(tilted_matrix)
        assert model.space_fraction() <= 0.10 + 1e-12

    def test_deltas_capture_the_distraction(self, tilted_matrix):
        """The tilted row's cells become deltas under robust axes."""
        model = RobustSVDDCompressor(
            budget_fraction=0.10, clip_percentile=95
        ).fit(tilted_matrix)
        delta_rows = {row for row, _c, _d in model.outlier_cells()}
        assert 13 in delta_rows

    def test_overall_error_comparable_to_svdd(self, tilted_matrix):
        svdd = SVDDCompressor(budget_fraction=0.10).fit(tilted_matrix)
        robust = RobustSVDDCompressor(budget_fraction=0.10).fit(tilted_matrix)
        assert rmspe(tilted_matrix, robust.reconstruct()) <= 3 * rmspe(
            tilted_matrix, svdd.reconstruct()
        )

    def test_invalid_budget(self):
        with pytest.raises(ConfigurationError):
            RobustSVDDCompressor(budget_fraction=0.0)


class TestOutOfCore:
    def test_store_path_matches_array_path(self, tmp_path, tilted_matrix):
        from repro.storage import MatrixStore

        store = MatrixStore.create(tmp_path / "x.mat", tilted_matrix)
        from_array = RobustSVDCompressor(k=2, clip_percentile=95).fit(tilted_matrix)
        from_store = RobustSVDCompressor(k=2, clip_percentile=95).fit(store)
        assert np.allclose(
            from_store.reconstruct(), from_array.reconstruct(), atol=1e-7
        )
        assert store.pass_count == 4  # norms, gram, energies, U
        store.close()
