"""Lock-striped LRU buffer pool over a :class:`~repro.storage.pager.FilePager`.

The pool caches a bounded number of pages and records hits, misses and
evictions.  The paper's reconstruction-cost argument — one disk access
per cell because the row of ``U`` lives in one block while ``V`` and
``Lambda`` are pinned — is demonstrated in the benchmarks by reading a
random-cell workload through a pool and inspecting these counters.

Concurrency model: the pool is **striped into shards**.  A page id
hashes to exactly one shard (``page_id % num_shards``), and each shard
owns its own mutex plus its own LRU / clock state, so concurrent
readers touching different pages proceed without contending on a single
pool-wide lock.  Page *data* is immutable once read (the stores are
read-only at query time), which keeps the races benign by construction:
the worst interleaving is two threads missing on the same page and both
reading it from the pager — duplicate work, never wrong bytes.  Physical
I/O always happens **outside** the shard lock, so a slow disk read on
one page never blocks cached hits on its shard siblings.

Single-shard pools (the default for small capacities) behave exactly
like the historical unsharded pool — same eviction order, same
counters — with one uncontended lock acquisition per access.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, PageError
from repro.obs.registry import registry as _obs
from repro.storage.pager import FilePager

#: Capacity below which a pool defaults to a single shard: tiny pools
#: gain nothing from striping, and the exact global-LRU semantics are
#: worth keeping where eviction order is observable.
_AUTO_SHARD_MIN_CAPACITY = 32

#: Upper bound on auto-selected shards; each shard should keep a
#: meaningful number of resident pages or eviction degrades to FIFO.
_AUTO_SHARD_MAX = 8


@dataclass
class PoolStats:
    """Cache behaviour counters for a buffer pool.

    ``bypasses`` counts page requests that were served from disk but
    deliberately *not* cached — the scan-resistant tails of large
    batched reads (:meth:`BufferPool.get_pages` /
    :meth:`BufferPool.get_page_range`).  They are real accesses: without
    them a ``read_rows``-heavy workload would appear to have a high hit
    rate simply because its cold reads were never counted.

    Mutation goes through :meth:`add`, which holds a per-struct lock so
    the counts stay exact when many threads share one pool.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bypasses: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def accesses(self) -> int:
        """Total logical page requests (cached or bypassing)."""
        return self.hits + self.misses + self.bypasses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from memory (0 when never used)."""
        return self.hits / self.accesses if self.accesses else 0.0

    def add(
        self,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        bypasses: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.evictions += evictions
            self.bypasses += bypasses

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bypasses = 0

    def to_dict(self) -> dict:
        """Counters as a JSON-ready dict (registry export format)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "accesses": self.accesses,
            "hit_rate": self.hit_rate,
        }


class _Shard:
    """One stripe of the pool: a mutex plus its private cache state.

    All fields are guarded by :attr:`lock`; callers (the pool) take it
    around every access.  Eviction counts are reported back to the
    shared :class:`PoolStats` by the pool, not here.
    """

    __slots__ = (
        "lock",
        "capacity",
        "policy",
        "pages",
        "pinned",
        "referenced",
        "hand",
        "hand_pos",
    )

    def __init__(self, capacity: int, policy: str) -> None:
        self.lock = threading.RLock()
        self.capacity = capacity
        self.policy = policy
        self.pages: OrderedDict[int, bytes] = OrderedDict()
        self.pinned: set[int] = set()
        # CLOCK state: reference bits and the hand's position.
        self.referenced: dict[int, bool] = {}
        self.hand: list[int] = []
        self.hand_pos = 0

    # The caller holds ``lock`` for every method below.

    def touch(self, page_id: int) -> None:
        """Record a hit on a resident page (policy bookkeeping)."""
        if self.policy == "lru":
            self.pages.move_to_end(page_id)
        else:
            self.referenced[page_id] = True

    def insert(self, page_id: int, data: bytes) -> int:
        """Cache a page, evicting as needed; returns evictions performed."""
        if page_id in self.pages:
            # A racing reader cached it first; the bytes are identical.
            self.touch(page_id)
            return 0
        self.pages[page_id] = data
        if self.policy == "lru":
            self.pages.move_to_end(page_id)
        else:
            self.referenced[page_id] = True
            self.hand.append(page_id)
        evicted = 0
        while len(self.pages) > self.capacity:
            if self._evict_one() is None:
                # Everything resident is pinned; allow temporary overflow
                # rather than fail a read.
                break
            evicted += 1
        return evicted

    def drop(self, page_id: int) -> None:
        """Remove one page and its policy state (no eviction count)."""
        self.pages.pop(page_id, None)
        self.pinned.discard(page_id)
        if page_id in self.referenced:
            del self.referenced[page_id]
            self.hand = [pid for pid in self.hand if pid != page_id]
            self.hand_pos = self.hand_pos % max(1, len(self.hand))

    def clear(self) -> None:
        """Drop everything, including pins and clock state."""
        self.pages.clear()
        self.pinned.clear()
        self.referenced.clear()
        self.hand = []
        self.hand_pos = 0

    def _evict_one(self) -> int | None:
        if self.policy == "clock":
            return self._evict_clock()
        for candidate in self.pages:
            if candidate not in self.pinned:
                del self.pages[candidate]
                return candidate
        return None

    def _evict_clock(self) -> int | None:
        """Second-chance sweep: clear reference bits until a victim."""
        if not self.hand:
            return None
        sweeps = 0
        max_steps = 2 * len(self.hand) + 1
        while sweeps < max_steps:
            self.hand_pos %= len(self.hand)
            candidate = self.hand[self.hand_pos]
            if candidate in self.pinned:
                self.hand_pos += 1
            elif self.referenced.get(candidate, False):
                self.referenced[candidate] = False
                self.hand_pos += 1
            else:
                self.hand.pop(self.hand_pos)
                del self.referenced[candidate]
                del self.pages[candidate]
                return candidate
            sweeps += 1
        return None


def _auto_shards(capacity: int) -> int:
    """Default stripe count for a pool of ``capacity`` pages."""
    if capacity < _AUTO_SHARD_MIN_CAPACITY:
        return 1
    return max(1, min(_AUTO_SHARD_MAX, capacity // (_AUTO_SHARD_MIN_CAPACITY // 2)))


class BufferPool:
    """Sharded page cache with pinning and a pluggable eviction policy.

    Policies:

    - ``"lru"`` (default) — strict least-recently-used via an ordered
      map; exact recency at the cost of a reorder per hit;
    - ``"clock"`` — the second-chance approximation most real buffer
      managers use: pages sit in a circular list with a reference bit;
      the clock hand clears bits until it finds an unreferenced victim.
      Hits are O(1) with no reordering.

    Args:
        pager: the page source.
        capacity: maximum number of cached pages (>= 1), summed across
            shards.
        policy: ``"lru"`` or ``"clock"`` (applies per shard).
        name: label under which the pool's counters are exported by the
            metrics registry; defaults to the backing file's name.
        shards: number of lock stripes.  ``None`` picks automatically —
            1 for small pools (exact historical semantics), up to 8 for
            large ones so concurrent readers don't serialize on one
            mutex.  Eviction is local to each shard.
    """

    def __init__(
        self,
        pager: FilePager,
        capacity: int = 64,
        policy: str = "lru",
        name: str | None = None,
        shards: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if policy not in ("lru", "clock"):
            raise ConfigurationError(
                f"policy must be 'lru' or 'clock', got {policy!r}"
            )
        if shards is None:
            shards = _auto_shards(capacity)
        if shards < 1 or shards > capacity:
            raise ConfigurationError(
                f"shards must be in [1, capacity={capacity}], got {shards}"
            )
        self.pager = pager
        self.capacity = capacity
        self.policy = policy
        self.name = name if name is not None else pager.path.name
        self.stats = PoolStats()
        _obs.register_source("pools", self.name, self.stats)
        # Split the capacity across shards; earlier shards absorb the
        # remainder so the total is exactly ``capacity``.
        base, extra = divmod(capacity, shards)
        self._shards = [
            _Shard(base + (1 if index < extra else 0), policy)
            for index in range(shards)
        ]

    @property
    def num_shards(self) -> int:
        """Number of lock stripes backing this pool."""
        return len(self._shards)

    def _shard_of(self, page_id: int) -> _Shard:
        return self._shards[page_id % len(self._shards)]

    def get_page(self, page_id: int) -> bytes:
        """Return page contents, loading through the pager on a miss.

        The physical read on a miss happens outside the shard lock, so a
        slow disk never blocks hits on other pages of the same shard.
        """
        shard = self._shard_of(page_id)
        with shard.lock:
            data = shard.pages.get(page_id)
            if data is not None:
                self.stats.add(hits=1)
                shard.touch(page_id)
                return data
        data = self.pager.read_page(page_id)
        with shard.lock:
            evicted = shard.insert(page_id, data)
        self.stats.add(misses=1, evictions=evicted)
        return data

    def _probe_resident(self, ids: np.ndarray) -> tuple[dict[int, bytes], list[int]]:
        """Split ``ids`` into resident pages (copied out, touched, counted
        as hits) and missing ones, taking each shard's lock once."""
        out: dict[int, bytes] = {}
        missing: list[int] = []
        num_shards = len(self._shards)
        hits = 0
        for shard_index in range(num_shards):
            shard = self._shards[shard_index]
            mine = ids[ids % num_shards == shard_index] if num_shards > 1 else ids
            if mine.size == 0:
                continue
            with shard.lock:
                for pid in mine.tolist():
                    data = shard.pages.get(pid)
                    if data is not None:
                        hits += 1
                        shard.touch(pid)
                        out[pid] = data
                    else:
                        missing.append(pid)
        if hits:
            self.stats.add(hits=hits)
        missing.sort()
        return out, missing

    def get_pages(self, page_ids) -> dict[int, bytes]:
        """Fetch a batch of pages, touching each distinct page once.

        The coalescing primitive behind
        :meth:`~repro.storage.matrix_store.MatrixStore.read_rows`: a
        page requested by several rows of one batch costs one pool
        access (one hit or one miss), not one per row, and all the
        misses go to the pager as one batched
        :meth:`~repro.storage.pager.FilePager.read_pages` call (runs of
        near-contiguous pages become single sequential reads).  Returns
        a ``page_id -> bytes`` mapping covering every requested page.
        """
        ids = np.unique(np.asarray(list(page_ids), dtype=np.int64))
        if ids.size == 0:
            return {}
        out, missing = self._probe_resident(ids)
        if missing:
            loaded = self.pager.read_pages(missing)
            out.update(loaded)
            cached_tail = missing
            if len(missing) >= self.capacity:
                # Scan resistance: a miss batch at least as large as the
                # pool would evict everything resident only to be evicted
                # itself by the end of the batch.  Keep the resident set
                # and cache just the tail of the scan; the rest of the
                # batch bypasses the cache but still counts as accesses.
                cached_tail = missing[-max(self.capacity // 2, 1) :]
            evicted = 0
            for pid in cached_tail:
                shard = self._shard_of(pid)
                with shard.lock:
                    evicted += shard.insert(pid, loaded[pid])
            self.stats.add(
                misses=len(cached_tail),
                bypasses=len(missing) - len(cached_tail),
                evictions=evicted,
            )
        return out

    def get_page_range(self, page_ids) -> tuple[int, bytes]:
        """The span ``min(page_ids)..max(page_ids)`` as one buffer.

        The dense-batch complement of :meth:`get_pages`: instead of
        materializing one ``bytes`` object per page, the whole span
        (gap pages included) arrives as a single sequential
        :meth:`~repro.storage.pager.FilePager.read_page_span` read, and
        the caller slices rows out of it directly.  Only the pages in
        ``page_ids`` are accounted as pool accesses; a tail of the
        missed pages is cached (scan resistance, as in
        :meth:`get_pages`).  Returns ``(first_page_id, blob)``.
        """
        ids = np.unique(np.asarray(list(page_ids), dtype=np.int64))
        if ids.size == 0:
            raise PageError("get_page_range requires at least one page id")
        first = int(ids[0])
        last = int(ids[-1])
        resident, missed = self._probe_resident(ids)
        blob = self.pager.read_page_span(first, last)
        # The span fetched every page first..last; the unrequested ones
        # are coalescing gaps (the pager cannot know the requested set).
        self.pager.stats.add(gap_pages=(last - first + 1) - int(ids.size))
        page_size = self.pager.page_size
        keep = ids[-max(self.capacity // 2, 1) :].tolist()
        keep_set = set(keep)
        # Missed pages that join the cache are misses; the rest of the
        # span's requested pages bypass the cache (still accesses).
        cached_misses = sum(1 for pid in missed if pid in keep_set)
        evicted = 0
        for pid in keep:
            if pid in resident:
                continue
            shard = self._shard_of(pid)
            offset = (pid - first) * page_size
            with shard.lock:
                evicted += shard.insert(pid, blob[offset : offset + page_size])
        self.stats.add(
            misses=cached_misses,
            bypasses=len(missed) - cached_misses,
            evictions=evicted,
        )
        return first, blob

    def pin(self, page_id: int) -> bytes:
        """Load a page and exempt it from eviction (the paper's pinned V/Lambda)."""
        data = self.get_page(page_id)
        shard = self._shard_of(page_id)
        with shard.lock:
            shard.pinned.add(page_id)
        return data

    def unpin(self, page_id: int) -> None:
        """Allow a previously pinned page to be evicted again."""
        shard = self._shard_of(page_id)
        with shard.lock:
            shard.pinned.discard(page_id)

    def invalidate(self, page_id: int | None = None) -> None:
        """Drop one page (or all pages when ``page_id`` is None) from the cache."""
        if page_id is None:
            for shard in self._shards:
                with shard.lock:
                    shard.clear()
        else:
            shard = self._shard_of(page_id)
            with shard.lock:
                shard.drop(page_id)

    def cached_pages(self) -> int:
        """Number of pages currently resident (summed across shards)."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += len(shard.pages)
        return total


def read_span(pool: BufferPool, offset: int, length: int) -> bytes:
    """Read ``length`` bytes starting at absolute file ``offset`` via the pool.

    Handles spans that straddle page boundaries; raises
    :class:`PageError` if the span extends past the file end.
    """
    if length < 0 or offset < 0:
        raise PageError(f"invalid span offset={offset} length={length}")
    page_size = pool.pager.page_size
    chunks: list[bytes] = []
    remaining = length
    position = offset
    while remaining > 0:
        page_id = position // page_size
        within = position % page_size
        take = min(remaining, page_size - within)
        page = pool.get_page(page_id)
        chunks.append(page[within : within + take])
        position += take
        remaining -= take
    return b"".join(chunks)
