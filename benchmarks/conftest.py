"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation: it computes the same rows/series the paper reports,
prints them, writes them to ``benchmarks/results/<name>.txt``, and
times one representative operation with pytest-benchmark.

Benchmarks additionally emit **machine-readable records** via
:func:`emit_json`: schema-versioned JSON files
(``benchmarks/results/BENCH_<name>.json``) carrying the git sha, a UTC
timestamp, the run's parameters and its metrics — the perf trajectory
CI uploads as artifacts.  Human-readable stdout tables stay unchanged.

Scale: by default the harness runs at 'CI scale' — the paper's
``phone2000`` and ``stocks`` workloads, plus a scale-up ladder to
N=20,000 — finishing in minutes.  Set ``REPRO_BENCH_SCALE=full`` to run
the paper's full N=100,000 ladder.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.data import phone_matrix, stocks_matrix

RESULTS_DIR = Path(__file__).parent / "results"

#: Space budgets (fraction of original) swept by the Fig. 6-style plots.
BUDGET_SWEEP = (0.025, 0.05, 0.10, 0.15, 0.20, 0.25)

#: The scale-up ladder of Fig. 10 / Table 4 (paper goes to 100_000).
def scaleup_ladder() -> list[int]:
    if os.environ.get("REPRO_BENCH_SCALE") == "full":
        return [1000, 2000, 5000, 10_000, 20_000, 50_000, 100_000]
    return [1000, 2000, 5000, 10_000, 20_000]


@pytest.fixture(scope="session")
def phone2000() -> np.ndarray:
    """The paper's primary accuracy-experiment dataset (2000 x 366)."""
    return phone_matrix(2000)

@pytest.fixture(scope="session")
def stocks381() -> np.ndarray:
    """The paper's stocks dataset shape (381 x 128)."""
    return stocks_matrix(381)


def emit(name: str, lines: list[str]) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, params: dict, metrics: dict) -> None:
    """Persist one schema-versioned JSON benchmark record.

    Writes ``benchmarks/results/BENCH_<name>.json`` with the git sha,
    UTC timestamp, ``params`` (workload knobs) and ``metrics``
    (measured numbers) — see :mod:`repro.obs.bench` for the schema.

    Every numeric metric must be finite: an ``inf``/``nan`` (e.g. a
    throughput computed from a wall time that rounded to zero) poisons
    every ratio the trajectory tooling derives from the record, so it
    is rejected at the source instead of surfacing downstream.

    Alongside the record, one full metrics-registry snapshot is
    appended to ``benchmarks/results/metrics.jsonl`` (rotating), tagged
    with the bench name — the per-run registry state (pool/pager stats,
    any span histograms) CI uploads next to the BENCH_*.json artifacts.
    """
    import math

    from repro.obs.bench import write_bench_json
    from repro.obs.export import MetricsSnapshotWriter

    for key, value in metrics.items():
        if isinstance(value, (int, float)) and not math.isfinite(value):
            raise AssertionError(f"metric {key!r} is not finite: {value!r}")

    path = write_bench_json(RESULTS_DIR, name, params=params, metrics=metrics)
    MetricsSnapshotWriter(RESULTS_DIR / "metrics.jsonl").write(bench=name)
    print(f"[bench] wrote {path}")


def format_table(title: str, header: list[str], rows: list[list[str]]) -> list[str]:
    """Fixed-width table rendering for terminal output."""
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    lines = [title, "=" * len(title), fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return lines
