"""Fixed-size page I/O with access accounting.

A :class:`FilePager` exposes a file as an array of fixed-size pages and
counts every physical read and write.  All higher layers (buffer pool,
matrix store, compressed model store) go through a pager, so the number
of 'disk accesses' the paper reasons about is an observable quantity in
this reproduction.

Reads are **lock-free and thread-safe**: every physical read goes
through one funnel (:meth:`FilePager._pread`) built on ``os.pread``,
which takes an explicit offset instead of the file description's shared
seek cursor.  There is no ``seek()`` anywhere on the read path, so
concurrent readers never race on file position and never pay the extra
``lseek(2)`` syscall.  Writes go through ``os.pwrite`` (appends compute
their offset under a small write lock — the only lock the pager owns).

The read funnel also

- resumes short reads instead of zero-padding mid-file gaps (padding is
  correct only at EOF),
- retries transient ``OSError`` (``EIO``/``EAGAIN``/``EINTR``/
  ``ETIMEDOUT``) with **decorrelated-jitter** backoff — each sleep is
  drawn uniformly from ``[base, 3 * previous_sleep]`` capped at
  ``_RETRY_MAX_SLEEP_S``, so concurrent readers hitting the same sick
  disk spread out instead of retrying in lockstep — counting each retry
  in :attr:`IOStats.retries` and the ``pager.retries`` registry
  counter and observing each sleep in the ``pager.retry_backoff_ns``
  histogram (a retry storm is visible as a fat p99 there), and raising
  :class:`RetryExhaustedError` once either the attempt budget or the
  total-elapsed cap (``_RETRY_MAX_ELAPSED_S``) is spent,
- consults :mod:`repro.storage.faults` so the chaos suite can script
  failures against the real call stack (one ``None`` check when off).
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import (
    ConfigurationError,
    PageError,
    RetryExhaustedError,
    StoreClosedError,
)
from repro.obs.registry import registry as _obs
from repro.storage import faults as _faults

PAGE_SIZE_DEFAULT = 8192

#: ``errno`` values treated as transient and worth retrying on read.
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EAGAIN, errno.EINTR, errno.ETIMEDOUT}
)


@dataclass
class IOStats:
    """Physical I/O counters for a pager.

    ``coalesced_reads`` counts batched reads that merged two or more
    requested pages into one sequential I/O; ``gap_pages`` counts the
    unrequested pages fetched (and discarded) inside those merged runs
    — together they quantify how much the span-coalescing optimization
    actually fires on a workload.  ``retries`` counts transient read
    errors absorbed by the bounded-backoff retry loop; a non-zero value
    on a healthy run means the disk is flaking, not the store.

    Mutation goes through :meth:`add`, which holds a per-struct lock so
    counts stay exact when many threads read through one pager.  Reads
    of individual fields are single attribute loads and need no lock.
    """

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    coalesced_reads: int = 0
    gap_pages: int = 0
    retries: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        reads: int = 0,
        writes: int = 0,
        bytes_read: int = 0,
        bytes_written: int = 0,
        coalesced_reads: int = 0,
        gap_pages: int = 0,
        retries: int = 0,
    ) -> None:
        """Atomically bump any subset of the counters."""
        with self._lock:
            self.reads += reads
            self.writes += writes
            self.bytes_read += bytes_read
            self.bytes_written += bytes_written
            self.coalesced_reads += coalesced_reads
            self.gap_pages += gap_pages
            self.retries += retries

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.reads = 0
            self.writes = 0
            self.bytes_read = 0
            self.bytes_written = 0
            self.coalesced_reads = 0
            self.gap_pages = 0
            self.retries = 0

    def snapshot(self) -> "IOStats":
        """A copy of the current counters."""
        with self._lock:
            return IOStats(
                self.reads,
                self.writes,
                self.bytes_read,
                self.bytes_written,
                self.coalesced_reads,
                self.gap_pages,
                self.retries,
            )

    def to_dict(self) -> dict:
        """Counters as a JSON-ready dict (registry export format)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "coalesced_reads": self.coalesced_reads,
            "gap_pages": self.gap_pages,
            "retries": self.retries,
        }


class FilePager:
    """Page-granular access to a single file.

    Pages are numbered from zero.  Reading past the end of the file
    raises :class:`PageError`; writing page ``n`` when the file has
    exactly ``n`` pages appends (sequential growth only, which is all
    the row-major stores need).

    Reads never mutate pager state other than the (locked) counters, so
    any number of threads may call :meth:`read_page` /
    :meth:`read_pages` / :meth:`read_page_span` concurrently on one
    instance.  Writes are serialized by :attr:`_write_lock`; the stores
    only write during (single-threaded) construction, but the lock makes
    mixed use safe rather than silently corrupting appends.

    Args:
        path: backing file.  Created if missing when ``create=True``.
        page_size: page size in bytes.
        create: truncate/create the file instead of opening an existing one.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = PAGE_SIZE_DEFAULT,
        create: bool = False,
    ) -> None:
        if page_size < 64:
            raise ConfigurationError(f"page_size must be >= 64, got {page_size}")
        self.path = Path(path)
        self.page_size = page_size
        self.stats = IOStats()
        if not create and not self.path.exists():
            raise PageError(f"no such file: {self.path}")
        flags = os.O_RDWR | (os.O_CREAT | os.O_TRUNC if create else 0)
        if hasattr(os, "O_CLOEXEC"):
            flags |= os.O_CLOEXEC
        self._fd = os.open(self.path, flags, 0o644)
        self._closed = False
        self._write_lock = threading.Lock()
        # Export the counters through the process-wide registry; the
        # weak registration dies with the pager.
        _obs.register_source("pagers", self.path.name, self.stats)

    #: Maximum retry attempts for a transient read error.
    _RETRY_ATTEMPTS = 3
    #: Floor of every backoff sleep (the first draw is uniform in
    #: ``[base, 3 * base]``).
    _RETRY_BASE_DELAY = 0.002
    #: Ceiling on a single decorrelated-jitter sleep.
    _RETRY_MAX_SLEEP_S = 0.050
    #: Total wall-clock budget across all retries of one read: a read
    #: that has been failing-and-sleeping this long raises
    #: :class:`RetryExhaustedError` even with attempts remaining, so a
    #: request-serving caller is never stuck behind an unbounded
    #: backoff ladder.
    _RETRY_MAX_ELAPSED_S = 0.500

    #: Process-wide jitter source; intentionally unseeded (retry spread
    #: across threads/processes is the point, reproducibility is not).
    _retry_rng = random.Random()

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Close the underlying file descriptor (idempotent)."""
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "FilePager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"pager for {self.path} is closed")

    def fileno(self) -> int:
        """The underlying file descriptor (for ``mmap``-based readers).

        A memory mapping created over this descriptor stays valid after
        the pager is closed — ``mmap(2)`` holds its own reference to the
        file — so callers may map once at open time and keep the view
        for the life of the mapping object.
        """
        self._require_open()
        return self._fd

    # -- geometry ---------------------------------------------------------

    def num_pages(self) -> int:
        """Number of whole or partial pages currently in the file."""
        self._require_open()
        # pwrite hits the fd directly (no userspace buffer), so fstat
        # always sees every written byte.
        size = os.fstat(self._fd).st_size
        return (size + self.page_size - 1) // self.page_size

    # -- physical I/O funnels ---------------------------------------------

    def _pread(self, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes at ``offset``, surviving faults.

        Built on positionless ``os.pread``: no shared seek cursor is
        read or written, so concurrent callers cannot interleave each
        other's positions and no lock is taken.  Short reads are resumed
        until ``length`` bytes arrive or EOF is reached (only EOF may
        return fewer bytes, so callers' zero-padding is always padding
        real end-of-file, never a gap a flaky ``read(2)`` left
        mid-file).  Transient ``OSError`` is retried with
        decorrelated-jitter backoff under both an attempt budget and a
        total-elapsed cap; persistent failure raises
        :class:`RetryExhaustedError`.
        """
        plan = _faults.plan_for(self.path)
        attempt = 0
        retry_started = 0.0
        last_sleep = self._RETRY_BASE_DELAY
        while True:
            try:
                if plan is not None:
                    plan.begin_read()
                chunks: list[bytes] = []
                got = 0
                first = True
                while got < length:
                    # Each resumption addresses offset+got explicitly —
                    # the positionless read makes "resume where the
                    # truncated chunk stopped" a pure arithmetic fact
                    # instead of cursor bookkeeping.
                    data = os.pread(self._fd, length - got, offset + got)
                    if first and plan is not None and data:
                        data = plan.truncate_read(data)
                    first = False
                    if not data:
                        break
                    chunks.append(data)
                    got += len(data)
                return b"".join(chunks)
            except OSError as exc:
                if exc.errno not in TRANSIENT_ERRNOS:
                    raise
                attempt += 1
                if attempt == 1:
                    retry_started = time.monotonic()
                elapsed = time.monotonic() - retry_started
                if attempt > self._RETRY_ATTEMPTS:
                    raise RetryExhaustedError(
                        f"{self.path}: read at offset {offset} still failing "
                        f"after {self._RETRY_ATTEMPTS} retries: {exc}"
                    ) from exc
                if elapsed > self._RETRY_MAX_ELAPSED_S:
                    raise RetryExhaustedError(
                        f"{self.path}: read at offset {offset} still failing "
                        f"after {elapsed * 1e3:.0f} ms of retries "
                        f"(cap {self._RETRY_MAX_ELAPSED_S * 1e3:.0f} ms): {exc}"
                    ) from exc
                # Decorrelated jitter (AWS architecture-blog recipe):
                # each sleep is uniform in [base, 3 * previous sleep],
                # capped — growth on average, never synchronized across
                # the threads/processes sharing a flaky device.
                delay = min(
                    self._RETRY_MAX_SLEEP_S,
                    self._retry_rng.uniform(
                        self._RETRY_BASE_DELAY, last_sleep * 3.0
                    ),
                )
                last_sleep = delay
                self.stats.add(retries=1)
                _obs.counter("pager.retries").inc()
                _obs.histogram("pager.retry_backoff_ns").observe(delay * 1e9)
                time.sleep(delay)

    def _pwrite(self, offset: int | None, data: bytes) -> None:
        """Write ``data`` at ``offset`` (or append when ``None``).

        Serialized by the write lock: an append's offset is the file
        size *at the moment of the write*, which is only stable while no
        other write is in flight.  Write errors are *not* retried: the
        durable-save protocols (temp file + rename, staging directory +
        swap) already guarantee a failed write never corrupts the
        committed artifact, so masking a sick disk here would only delay
        the diagnosis.
        """
        with self._write_lock:
            if offset is None:
                offset = os.fstat(self._fd).st_size
            plan = _faults.plan_for(self.path)
            if plan is not None:
                torn = plan.begin_write(data)
                if torn is not None:
                    self._pwrite_all(offset, torn)
                    raise OSError(errno.EIO, "injected torn write")
            self._pwrite_all(offset, data)
            self.stats.add(writes=1, bytes_written=len(data))

    def _pwrite_all(self, offset: int, data: bytes) -> None:
        """``os.pwrite`` resuming partial writes until ``data`` is flushed."""
        view = memoryview(data)
        written = 0
        while written < len(view):
            written += os.pwrite(self._fd, view[written:], offset + written)

    # -- page I/O -----------------------------------------------------------

    def read_page(self, page_id: int) -> bytes:
        """Read one page; short pages at EOF are zero-padded to page_size."""
        self._require_open()
        if page_id < 0 or page_id >= self.num_pages():
            raise PageError(
                f"page {page_id} out of range [0, {self.num_pages()}) in {self.path}"
            )
        data = self._pread(page_id * self.page_size, self.page_size)
        self.stats.add(reads=1, bytes_read=len(data))
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    #: Maximum gap (in pages) bridged when coalescing a batch read into
    #: one sequential I/O.  Reading a few unrequested pages in the middle
    #: of a run is far cheaper than an extra read round-trip.
    _COALESCE_GAP = 16

    def read_pages(self, page_ids) -> dict[int, bytes]:
        """Read a batch of pages, coalescing near-contiguous runs.

        Sorted requested pages whose gaps do not exceed
        ``_COALESCE_GAP`` are fetched with a single positioned read
        spanning the run (gap pages are read and discarded); each run
        counts as one I/O in :attr:`stats`.  Returns ``page_id ->
        bytes`` with every page zero-padded to ``page_size``.
        """
        self._require_open()
        ids = sorted({int(page_id) for page_id in page_ids})
        if not ids:
            return {}
        total = self.num_pages()
        if ids[0] < 0 or ids[-1] >= total:
            raise PageError(
                f"page batch [{ids[0]}, {ids[-1]}] out of range "
                f"[0, {total}) in {self.path}"
            )
        out: dict[int, bytes] = {}
        position = 0
        while position < len(ids):
            end = position
            while (
                end + 1 < len(ids)
                and ids[end + 1] - ids[end] <= self._COALESCE_GAP
            ):
                end += 1
            first = ids[position]
            span = ids[end] - first + 1
            blob = self._pread(first * self.page_size, span * self.page_size)
            requested = end - position + 1
            coalesced = 1 if requested > 1 else 0
            self.stats.add(
                reads=1,
                bytes_read=len(blob),
                coalesced_reads=coalesced,
                gap_pages=(span - requested) if coalesced else 0,
            )
            if len(blob) < span * self.page_size:
                blob = blob + b"\x00" * (span * self.page_size - len(blob))
            for index in range(position, end + 1):
                offset = (ids[index] - first) * self.page_size
                out[ids[index]] = blob[offset : offset + self.page_size]
            position = end + 1
        return out

    def read_page_span(self, first: int, last: int) -> bytes:
        """Pages ``first..last`` inclusive as one contiguous buffer.

        One positioned read; the tail is zero-padded so the result is
        always ``(last - first + 1) * page_size`` bytes.
        """
        self._require_open()
        total = self.num_pages()
        if first < 0 or last < first or last >= total:
            raise PageError(
                f"page span [{first}, {last}] out of range [0, {total}) "
                f"in {self.path}"
            )
        length = (last - first + 1) * self.page_size
        blob = self._pread(first * self.page_size, length)
        # The span read is itself a coalesced I/O; gap accounting
        # lives with the caller, which knows the requested subset.
        self.stats.add(
            reads=1,
            bytes_read=len(blob),
            coalesced_reads=1 if last > first else 0,
        )
        if len(blob) < length:
            blob = blob + b"\x00" * (length - len(blob))
        return blob

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one page; ``data`` must be at most one page long."""
        self._require_open()
        if len(data) > self.page_size:
            raise PageError(
                f"page payload of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if page_id < 0 or page_id > self.num_pages():
            raise PageError(
                f"cannot write page {page_id}; file has {self.num_pages()} pages"
            )
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        self._pwrite(page_id * self.page_size, data)

    def append_raw(self, data: bytes) -> None:
        """Append raw bytes (used by bulk writers building the data region)."""
        self._require_open()
        self._pwrite(None, data)

    def flush(self) -> None:
        """No-op kept for API compatibility: fd writes are unbuffered."""
        self._require_open()

    def sync(self) -> None:
        """``fsync`` — the data is on stable storage on return."""
        self._require_open()
        os.fsync(self._fd)
