"""Summary store speedup: dashboard aggregates without touching u.mat.

The whole point of materializing time-hierarchy rollups is that the
decision-support queries the paper motivates ('total volume per month',
'who are our biggest customers') stop paying O(N) factor work per
query.  This bench builds the phone model at scale-up size, measures a
covered aggregate on the summary route vs the factor route, asserts
the >=10x speedup and the zero-page property, and checks the
incremental-maintenance contract: after appending a week, the summary
files are byte-identical to a cold rebuild's.
"""

from __future__ import annotations

import shutil
import time

import numpy as np

from benchmarks.conftest import emit, emit_json, format_table
from repro.core import CompressedMatrix, build_compressed
from repro.core.update import append_columns
from repro.data import phone_matrix
from repro.obs import registry
from repro.query import AggregateQuery, QueryEngine, Selection, bucket_series
from repro.summaries import SUMMARY_FILES, summarize_directory

ROWS = 20_000
COLS = 366
NEW_DAYS = 7
BUDGET = 0.10
REPEATS = 25


def _time_aggregates(engine, queries, repeats=REPEATS) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for query in queries:
            engine.aggregate(query)
    return (time.perf_counter() - start) / (repeats * len(queries))


def test_summary_vs_factor_path(tmp_path_factory, benchmark):
    root = tmp_path_factory.mktemp("summaries")
    data = phone_matrix(ROWS)
    build_compressed(data, root / "model", BUDGET).close()

    # The dashboard workload: full-axis aggregates over day ranges.
    queries = [
        AggregateQuery("sum", Selection(cols=range(0, 28))),
        AggregateQuery("avg", Selection(cols=range(28, 120))),
        AggregateQuery("max", Selection()),
        AggregateQuery("stddev", Selection(cols=range(0, COLS, 2))),
    ]

    registry.enable()
    try:
        with CompressedMatrix.open(root / "model") as store:
            summary_engine = QueryEngine(store)
            factor_engine = QueryEngine(store, use_summaries=False)

            # Covered queries must plan and execute as path=summary with
            # zero pages read — the acceptance property.
            for query in queries:
                plan = summary_engine.explain(query)
                assert plan["path"] == "summary", plan
            store.u_pool_stats.reset()
            result = summary_engine.aggregate(queries[0])
            pages_read = store.u_pool_stats.accesses
            assert pages_read == 0, f"summary hit read {pages_read} u.mat pages"
            assert result.rows_fetched == 0

            summary_s = _time_aggregates(summary_engine, queries)
            factor_s = _time_aggregates(factor_engine, queries, repeats=3)
            groupby_start = time.perf_counter()
            series = bucket_series(store, "month", "sum")
            groupby_s = time.perf_counter() - groupby_start
            assert series["path"] == "summary"
    finally:
        registry.disable()

    speedup = factor_s / summary_s

    # Incremental maintenance: append a week, then diff the summary
    # files against a cold rebuild of the same model — byte-identical.
    rng = np.random.default_rng(17)
    new_days = data[:, :NEW_DAYS] * (
        1.0 + 0.05 * rng.standard_normal((ROWS, NEW_DAYS))
    )
    append_start = time.perf_counter()
    append_columns(root / "model", new_days)
    append_refresh_s = time.perf_counter() - append_start
    cold = root / "cold"
    shutil.copytree(root / "model", cold)
    rebuild_start = time.perf_counter()
    summarize_directory(cold, rebuild=True)
    summarize_rebuild_s = time.perf_counter() - rebuild_start
    identical = all(
        (root / "model" / name).read_bytes() == (cold / name).read_bytes()
        for name in SUMMARY_FILES
    )
    assert identical, "post-append summaries differ from a cold rebuild"

    lines = format_table(
        f"Summary store vs factor path on phone{ROWS} ({COLS} days, "
        f"s={BUDGET:.0%})",
        ["route", "ms/query", "u.mat pages"],
        [
            ["summary", f"{summary_s * 1e3:.3f}", "0"],
            ["factor", f"{factor_s * 1e3:.3f}", f"~{ROWS}"],
        ],
    )
    lines.append(
        f"speedup: {speedup:.0f}x   groupby(month): {groupby_s * 1e3:.2f} ms   "
        f"append-refresh: {append_refresh_s:.2f}s "
        f"(cold summarize {summarize_rebuild_s:.2f}s)   "
        f"post-append bit-identical: {identical}"
    )
    emit("summaries", lines)
    emit_json(
        "summaries",
        params={
            "rows": ROWS,
            "cols": COLS,
            "budget_fraction": BUDGET,
            "queries": len(queries),
            "repeats": REPEATS,
        },
        metrics={
            "summary_query_seconds": summary_s,
            "factor_query_seconds": factor_s,
            "speedup": speedup,
            "groupby_month_seconds": groupby_s,
            "pages_read_on_hit": int(pages_read),
            "append_refresh_seconds": append_refresh_s,
            "summarize_rebuild_seconds": summarize_rebuild_s,
            "post_append_bit_identical": identical,
        },
    )

    # Acceptance: the summary route is >=10x the factor route on
    # dashboard aggregates and never touches u.mat.
    assert speedup >= 10.0, f"summary speedup only {speedup:.1f}x"

    with CompressedMatrix.open(root / "model") as store:
        engine = QueryEngine(store)
        benchmark.pedantic(
            lambda: engine.aggregate(queries[0]), rounds=30, iterations=5
        )
