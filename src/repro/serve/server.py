"""The query-serving HTTP endpoint.

:class:`QueryServer` is a stdlib-only HTTP front door
(``ThreadingHTTPServer`` via the graceful plumbing in
:mod:`repro.obs.serve`) over one :class:`~repro.serve.robust.RobustDispatcher`:

- ``GET /query?q=<text>`` — any query in the textual language
  (:mod:`repro.query.parser`);
- ``GET /cell?row=R&col=C`` — one cell;
- ``GET /aggregate?fn=sum&rows=0:50&cols=0:30`` — one aggregate;
- ``GET /groupby?by=month&fn=sum[&limit=N]`` — a whole dashboard
  series from the materialized summary store (zero ``u.mat`` pages on
  a hit; ``by`` is ``day``/``week``/``month``/``quarter``/``year``/
  ``customer``);
- ``GET /explain?q=<text>`` — the planner's chosen route (the one
  ``/query`` would execute right now, healthy or brownout), never
  executed;
- ``GET /stats`` — the dispatcher's health snapshot (JSON);
- ``GET /healthz`` / ``/healthz/live`` — liveness (always ``ok``);
- ``GET /healthz/ready`` — readiness (503 while warming or draining);
- ``GET /metrics`` — OpenMetrics exposition of the process registry.

Every query route accepts a deadline as ``?timeout_ms=`` or the
``X-Repro-Deadline-Ms`` header (query param wins), clamped to the
configured maximum.  ``/query``, ``/aggregate``, and ``/explain``
additionally accept ``?max_rmspe=`` — the per-query error budget the
planner enforces (0 demands exactness; a positive fraction admits the
approximate SVD-only route when the model's stored estimate fits).

**Error contract** — the handler maps exceptions, never leaks them:

====================================  ======  ==========================
exception                             status  extras
====================================  ======  ==========================
``QueryError`` (parse/validation)     400     structured JSON error
``OverloadedError`` (shed)            503     ``Retry-After`` header
``DeadlineExceededError``             504     —
anything else                         500     generic JSON, no traceback
====================================  ======  ==========================

**Lifecycle** — ``start()`` warms the worker pool *before* accepting
traffic (ProcessPoolExecutor forks lazily; the first request must not
pay the fork) and only then flips readiness.  SIGTERM/SIGINT (via
:meth:`install_signal_handlers` or :meth:`request_shutdown`) flips
readiness off, sheds new requests with ``503``, waits out in-flight
requests bounded by ``drain_grace_s``, stops the pool, and releases
:meth:`serve_until_shutdown` so the CLI can ``exit 0``.
"""

from __future__ import annotations

import dataclasses
import json
import signal
import threading
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    DeadlineExceededError,
    OverloadedError,
    QueryError,
    ReproError,
)
from repro.obs.export import render_openmetrics
from repro.obs.registry import registry as _obs
from repro.obs.serve import (
    OPENMETRICS_CONTENT_TYPE,
    BaseEndpointHandler,
    GracefulHTTPServer,
    HealthState,
)
from repro.query.engine import AggregateQuery
from repro.query.parser import parse_query
from repro.serve.config import ServeConfig
from repro.serve.robust import RobustDispatcher

__all__ = ["QueryServer"]

_JSON = "application/json; charset=utf-8"


def _error_body(kind: str, message: str) -> bytes:
    return json.dumps({"error": kind, "message": message}).encode()


class _QueryHandler(BaseEndpointHandler):
    """Routes one request; all state lives on the bound server object."""

    # Bound by QueryServer before serving starts.
    dispatcher: RobustDispatcher = None  # type: ignore[assignment]
    config: ServeConfig = None  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            split = urlsplit(self.path)
            path = split.path
            params = parse_qs(split.query, keep_blank_values=True)
        except ValueError:
            self._reply(400, _JSON, _error_body("bad_request", "unparseable URL"))
            return
        try:
            if self.handle_health(path):
                return
            if path == "/metrics":
                body = render_openmetrics().encode()
                self._reply(200, OPENMETRICS_CONTENT_TYPE, body)
            elif path == "/stats":
                body = json.dumps(self.dispatcher.stats(), default=str).encode()
                self._reply(200, _JSON, body)
            elif path == "/query":
                self._run_query(self._text_query(params), params)
            elif path == "/cell":
                self._run_query(self._cell_query(params), params)
            elif path == "/aggregate":
                self._run_query(self._aggregate_query(params), params)
            elif path == "/groupby":
                self._groupby(params)
            elif path == "/explain":
                self._explain(params)
            else:
                self._reply(
                    404, _JSON, _error_body("not_found", f"no route {path}")
                )
        except QueryError as exc:
            self._reply(400, _JSON, _error_body("bad_request", str(exc)))
        except OverloadedError as exc:
            self._reply(
                503,
                _JSON,
                _error_body("overloaded", str(exc)),
                extra_headers={
                    "Retry-After": f"{max(1, round(exc.retry_after_s))}"
                },
            )
        except DeadlineExceededError as exc:
            self._reply(504, _JSON, _error_body("deadline_exceeded", str(exc)))
        except ReproError as exc:
            # A library failure below the query layer (storage fault,
            # corrupt page...).  Structured, no traceback.
            _obs.counter("server.internal_errors").inc()
            self._reply(500, _JSON, _error_body(type(exc).__name__, str(exc)))
        except Exception:
            # Never leak a traceback to the wire.
            _obs.counter("server.internal_errors").inc()
            self._reply(
                500, _JSON, _error_body("internal", "internal server error")
            )

    # -- request parsing ------------------------------------------------

    @staticmethod
    def _one(params: dict, name: str) -> str | None:
        values = params.get(name)
        if not values:
            return None
        return values[-1]

    def _text_query(self, params: dict):
        text = self._one(params, "q")
        if text is None:
            raise QueryError("missing required parameter 'q'")
        return self._with_budget(parse_query(text), params)

    def _with_budget(self, query, params: dict):
        """Attach a ``max_rmspe=`` error budget to an aggregate query.

        Validation happens in ``AggregateQuery.__post_init__`` (a bad
        budget is a :class:`QueryError` → 400); the parameter is
        rejected on queries that cannot carry one.
        """
        raw = self._one(params, "max_rmspe")
        if raw is None:
            return query
        if not isinstance(query, AggregateQuery):
            raise QueryError("max_rmspe only applies to aggregate queries")
        return dataclasses.replace(query, max_rmspe=raw)

    def _cell_query(self, params: dict):
        row, col = self._one(params, "row"), self._one(params, "col")
        if row is None or col is None:
            raise QueryError("/cell needs integer 'row' and 'col' parameters")
        try:
            return parse_query(f"cell({int(row)}, {int(col)})")
        except ValueError:
            raise QueryError(
                f"row/col must be integers, got row={row!r} col={col!r}"
            ) from None

    def _aggregate_query(self, params: dict):
        fn = self._one(params, "fn")
        if fn is None:
            raise QueryError("/aggregate needs an 'fn' parameter")
        parts = [f"{fn}()"]
        rows, cols = self._one(params, "rows"), self._one(params, "cols")
        if rows:
            parts.append(f"rows {rows}")
        if cols:
            parts.append(f"cols {cols}")
        return self._with_budget(parse_query(" ".join(parts)), params)

    def _timeout_ms(self, params: dict) -> float | None:
        raw = self._one(params, "timeout_ms")
        if raw is None:
            raw = self.headers.get("X-Repro-Deadline-Ms")
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise QueryError(f"timeout_ms must be a number, got {raw!r}") from None
        if value <= 0:
            raise QueryError(f"timeout_ms must be positive, got {value:g}")
        return value

    # -- query routes ---------------------------------------------------

    def _run_query(self, query, params: dict) -> None:
        payload = self.dispatcher.dispatch(
            query, timeout_ms=self._timeout_ms(params)
        )
        self._reply(200, _JSON, json.dumps(payload).encode())

    def _groupby(self, params: dict) -> None:
        by = self._one(params, "by") or "day"
        fn = self._one(params, "fn") or "sum"
        raw_limit = self._one(params, "limit")
        limit = None
        if raw_limit is not None:
            try:
                limit = int(raw_limit)
            except ValueError:
                raise QueryError(
                    f"limit must be an integer, got {raw_limit!r}"
                ) from None
        payload = self.dispatcher.groupby(by, fn, limit=limit)
        self._reply(200, _JSON, json.dumps(payload).encode())

    def _explain(self, params: dict) -> None:
        query = self._text_query(params)
        plan = self.dispatcher.explain(query)
        self._reply(200, _JSON, json.dumps(plan).encode())


class QueryServer:
    """One model directory served over HTTP with the robustness stack.

    Args:
        model_dir: a ``CompressedMatrix`` model directory.
        config: serving thresholds (:class:`ServeConfig`).
        verified_rmspe: catalog RMSPE stamped on degraded answers.

    Usable as a context manager.  :attr:`url` resolves the bound port
    (``port=0`` picks a free one).
    """

    def __init__(
        self,
        model_dir: str | Path,
        config: ServeConfig | None = None,
        verified_rmspe: float | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.dispatcher = RobustDispatcher(
            model_dir, self.config, verified_rmspe=verified_rmspe
        )
        self.health = HealthState()
        self._server: GracefulHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._shutdown_event = threading.Event()
        self._stop_lock = threading.Lock()
        self._stopped = False
        self.drained_clean = True

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is not None:
            return self._server.server_address[1]
        return self.config.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "QueryServer":
        """Warm the pool, bind, serve in a daemon thread; returns self."""
        if self._server is not None:
            return self
        # Fork the workers before any HTTP thread exists: mixing
        # fork-on-demand with live threads is where fork-safety bugs
        # breed, and the first request shouldn't pay the fork anyway.
        self.dispatcher.warm()
        handler = type(
            "_BoundQueryHandler",
            (_QueryHandler,),
            {
                "dispatcher": self.dispatcher,
                "config": self.config,
                "health": self.health,
            },
        )
        self._server = GracefulHTTPServer(
            (self.config.host, self.config.port), handler
        )
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        self.health.set_ready(True)
        _obs.gauge("server.ready").set(1)
        return self

    def stop(self) -> None:
        """Graceful drain: readiness off → shed new work → wait out
        in-flight requests (bounded) → stop pool and listener.

        Idempotent and safe from signal handlers' deferred context (the
        actual call happens on the main thread via
        :meth:`serve_until_shutdown`).
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        self.health.set_ready(False)
        _obs.gauge("server.ready").set(0)
        # Dispatcher first: new requests now shed with 503 + Retry-After
        # while the HTTP listener keeps answering health checks.
        self.drained_clean = self.dispatcher.drain()
        server, thread = self._server, self._thread
        self._server, self._thread = None, None
        if server is not None:
            server.shutdown()
            server.drain(self.config.drain_grace_s)
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self._shutdown_event.set()

    def request_shutdown(self) -> None:
        """Flip readiness and wake :meth:`serve_until_shutdown`.

        Signal-handler safe: does no blocking work itself — the waiting
        thread performs the actual drain.
        """
        self.health.set_ready(False)
        _obs.gauge("server.ready").set(0)
        self._shutdown_event.set()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into a graceful drain.

        A no-op off the main thread (handlers can only be installed
        there); embedded callers use :meth:`request_shutdown` directly.
        """
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_shutdown())

    def serve_until_shutdown(self, duration_s: float | None = None) -> bool:
        """Block until a shutdown is requested (or ``duration_s`` runs
        out), then drain.  Returns True when in-flight requests
        finished within the grace period."""
        self._shutdown_event.wait(timeout=duration_s)
        self.stop()
        return self.drained_clean

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
