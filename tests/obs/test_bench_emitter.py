"""Tests for the machine-readable benchmark record emitter."""

from __future__ import annotations

import json

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    bench_record,
    git_sha,
    write_bench_json,
)


class TestGitSha:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("GITHUB_SHA", "cafe1234")
        assert git_sha() == "cafe1234"

    def test_falls_back_to_git(self, monkeypatch):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        monkeypatch.delenv("GIT_SHA", raising=False)
        sha = git_sha()
        # This test runs inside the repository checkout.
        assert sha is None or len(sha) == 40

    def test_none_outside_a_checkout(self, monkeypatch, tmp_path):
        monkeypatch.delenv("GITHUB_SHA", raising=False)
        monkeypatch.delenv("GIT_SHA", raising=False)
        assert git_sha(cwd=tmp_path) is None


class TestRecords:
    def test_record_shape(self, monkeypatch):
        monkeypatch.setenv("GIT_SHA", "deadbeef")
        record = bench_record("demo", params={"n": 10}, metrics={"qps": 5.0})
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["name"] == "demo"
        assert record["git_sha"] == "deadbeef"
        assert record["params"] == {"n": 10}
        assert record["metrics"] == {"qps": 5.0}
        # UTC ISO timestamp.
        assert record["timestamp"].endswith("+00:00")

    def test_write_creates_named_json(self, tmp_path):
        path = write_bench_json(
            tmp_path / "results", "storage_access", params={}, metrics={"m": 1}
        )
        assert path.name == "BENCH_storage_access.json"
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == BENCH_SCHEMA_VERSION
        assert loaded["metrics"] == {"m": 1}

    def test_rewrite_overwrites(self, tmp_path):
        write_bench_json(tmp_path, "x", params={}, metrics={"v": 1})
        path = write_bench_json(tmp_path, "x", params={}, metrics={"v": 2})
        assert json.loads(path.read_text())["metrics"] == {"v": 2}


class TestLogging:
    def test_log_event_json_lines(self, enabled_registry):
        import io

        from repro.obs import log_event, set_log_stream

        stream = io.StringIO()
        set_log_stream(stream)
        try:
            log_event("build.pass", number=1, seconds=0.5)
        finally:
            set_log_stream(None)
        line = json.loads(stream.getvalue())
        assert line["event"] == "build.pass"
        assert line["number"] == 1
        assert "ts" in line
        # ISO-8601 UTC companion timestamp on every record.
        assert line["time"].endswith("+00:00")
        assert line["time"][:4].isdigit()

    def test_log_event_carries_ambient_trace_id(self, enabled_registry):
        import io

        from repro.obs import log_event, set_log_stream, trace

        stream = io.StringIO()
        set_log_stream(stream)
        try:
            log_event("untraced")
            with trace("feed0000deadbeef"):
                log_event("traced")
        finally:
            set_log_stream(None)
        untraced, traced = (
            json.loads(line) for line in stream.getvalue().splitlines()
        )
        assert "trace_id" not in untraced
        assert traced["trace_id"] == "feed0000deadbeef"

    def test_latency_summary_ms_block(self):
        from repro.obs import Histogram
        from repro.obs.bench import latency_summary_ms

        histogram = Histogram()
        for value in (1_000_000.0, 2_000_000.0, 4_000_000.0):
            histogram.observe(value)
        block = latency_summary_ms(histogram)
        assert block["count"] == 3
        assert 1.0 <= block["p50_ms"] <= 4.0
        assert block["p50_ms"] <= block["p95_ms"] <= block["p99_ms"]
        empty = latency_summary_ms(Histogram())
        assert empty == {"count": 0, "p50_ms": None, "p95_ms": None, "p99_ms": None}

    def test_log_event_silent_when_disabled(self):
        import io

        from repro.obs import log_event, registry, set_log_stream

        assert registry.enabled is False
        stream = io.StringIO()
        set_log_stream(stream)
        try:
            log_event("noisy", value=1)
        finally:
            set_log_stream(None)
        assert stream.getvalue() == ""
