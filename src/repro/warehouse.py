"""Warehouse catalog: many compressed matrices under one roof.

The paper's setting is a data warehouse, which holds more than one
dataset.  :class:`Warehouse` manages a directory of named
:class:`~repro.core.store.CompressedMatrix` models plus their raw
sources, with a JSON catalog recording name, shape, budget, build
parameters, and verification status — the operational surface around
the single-matrix machinery.

Layout::

    <root>/catalog.json
    <root>/<name>/raw.mat          (optional; kept when ingesting)
    <root>/<name>/model/...        (the CompressedMatrix directory)
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.store import CompressedMatrix
from repro.core.svdd import SVDDCompressor
from repro.core.verify import verify_model
from repro.exceptions import ConfigurationError, DatasetError, FormatError
from repro.storage.matrix_store import MatrixStore

_CATALOG = "catalog.json"


@dataclass
class CatalogEntry:
    """Metadata for one warehouse dataset.

    ``drift`` / ``rebuild_recommended`` track incremental maintenance
    (see :mod:`repro.core.update`); they default to the fresh-build
    values so catalogs written before the update subsystem load
    unchanged.
    """

    name: str
    rows: int
    cols: int
    budget_fraction: float
    cutoff: int
    num_deltas: int
    keeps_raw: bool
    verified_rmspe: float | None = None
    drift: float = 0.0
    rebuild_recommended: bool = False


class Warehouse:
    """A directory of named compressed datasets with a JSON catalog."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._entries: dict[str, CatalogEntry] = {}
        self._load_catalog()

    # -- catalog persistence ----------------------------------------------

    def _catalog_path(self) -> Path:
        return self.root / _CATALOG

    def _load_catalog(self) -> None:
        path = self._catalog_path()
        if not path.exists():
            return
        try:
            raw = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise FormatError(f"{path}: corrupt catalog") from exc
        self._entries = {
            record["name"]: CatalogEntry(**record) for record in raw["datasets"]
        }

    def _save_catalog(self) -> None:
        payload = {
            "datasets": [asdict(entry) for entry in self._entries.values()]
        }
        self._catalog_path().write_text(json.dumps(payload, indent=2))

    # -- dataset management ------------------------------------------------

    def names(self) -> list[str]:
        """Catalogued dataset names, sorted."""
        return sorted(self._entries)

    def entry(self, name: str) -> CatalogEntry:
        """Catalog metadata for one dataset."""
        if name not in self._entries:
            raise DatasetError(f"no dataset {name!r} in warehouse {self.root}")
        return self._entries[name]

    def _validate_name(self, name: str) -> None:
        if not name or any(ch in name for ch in "/\\. "):
            raise ConfigurationError(
                f"dataset name {name!r} must be non-empty without '/', '\\\\', "
                "'.', or spaces"
            )

    def ingest(
        self,
        name: str,
        matrix: np.ndarray | MatrixStore,
        budget_fraction: float = 0.10,
        keep_raw: bool = True,
        verify: bool = True,
        compressor: SVDDCompressor | None = None,
        bytes_per_value: int = 8,
    ) -> CatalogEntry:
        """Compress ``matrix`` into the warehouse under ``name``.

        Builds through :func:`~repro.core.build.build_compressed`, so
        every ingested model carries the persisted pass-1 state that
        makes it appendable (:meth:`append_columns` /
        :meth:`append_rows`) without a rescan.

        Args:
            name: catalog key (also the subdirectory name).
            matrix: the data, in memory or as an existing store.
            budget_fraction: SVDD space budget (ignored when an explicit
                ``compressor`` is supplied).
            keep_raw: retain the raw matrix beside the model (needed for
                later :meth:`verify` / :meth:`rebuild` calls).
            verify: audit the model right after building and record the
                measured RMSPE in the catalog.
            compressor: optional pre-configured compressor.
            bytes_per_value: factor precision on disk (ignored when an
                explicit ``compressor`` is supplied).
        """
        from repro.core.build import build_compressed

        self._validate_name(name)
        if name in self._entries:
            raise DatasetError(f"dataset {name!r} already exists; drop it first")
        dataset_dir = self.root / name
        dataset_dir.mkdir(parents=True, exist_ok=True)

        if isinstance(matrix, MatrixStore):
            raw_store = matrix
            owns_raw = False
        else:
            raw_store = MatrixStore.create(dataset_dir / "raw.mat", matrix)
            owns_raw = True

        compressed = build_compressed(
            raw_store,
            dataset_dir / "model",
            budget_fraction=budget_fraction,
            bytes_per_value=bytes_per_value,
            compressor=compressor,
        )
        verified = None
        rows, cols = compressed.shape
        cutoff = compressed.cutoff
        num_deltas = compressed.num_deltas
        if verify:
            verified = verify_model(raw_store, compressed).rmspe
        compressed.close()

        if owns_raw and not keep_raw:
            raw_store.close()
            (dataset_dir / "raw.mat").unlink()
        elif owns_raw:
            raw_store.close()
        elif keep_raw:
            # Copy an externally-owned store into the warehouse.
            shutil.copyfile(raw_store.path, dataset_dir / "raw.mat")

        entry = CatalogEntry(
            name=name,
            rows=rows,
            cols=cols,
            budget_fraction=getattr(compressor, "budget_fraction", budget_fraction)
            if compressor
            else budget_fraction,
            cutoff=cutoff,
            num_deltas=num_deltas,
            keeps_raw=keep_raw,
            verified_rmspe=verified,
        )
        self._entries[name] = entry
        self._save_catalog()
        return entry

    # -- incremental maintenance ------------------------------------------

    def _apply_append(self, name: str, result) -> CatalogEntry:
        """Fold an :class:`~repro.core.update.AppendResult` into the catalog."""
        entry = self._entries[name]
        entry.rows = result.rows
        entry.cols = result.cols
        entry.num_deltas = result.num_deltas
        entry.drift = result.drift
        entry.rebuild_recommended = result.rebuild_recommended
        # The stored RMSPE audited the pre-append model; drop it rather
        # than report a stale figure for data it never saw.
        entry.verified_rmspe = None
        self._save_catalog()
        return entry

    def append_columns(self, name: str, new_cols: np.ndarray) -> CatalogEntry:
        """Append new days to a catalogued model in place.

        Runs :func:`repro.core.update.append_columns` on the dataset's
        model directory (crash-atomic; concurrent readers keep their
        pre-append snapshot until they reopen) and updates the catalog
        entry — shape, outlier count, drift, and the advisory
        ``rebuild_recommended`` flag.  The retained raw store, if any,
        is *not* extended, so :meth:`verify` refuses to audit an
        appended dataset until it is rebuilt from complete data.
        """
        from repro.core.update import append_columns as _append_columns

        self.entry(name)
        result = _append_columns(self.root / name / "model", new_cols)
        return self._apply_append(name, result)

    def append_rows(self, name: str, new_rows: np.ndarray) -> CatalogEntry:
        """Append new customers to a catalogued model in place.

        The row-wise counterpart of :meth:`append_columns`, backed by
        :func:`repro.core.update.append_rows`.
        """
        from repro.core.update import append_rows as _append_rows

        self.entry(name)
        result = _append_rows(self.root / name / "model", new_rows)
        return self._apply_append(name, result)

    def open(
        self, name: str, pool_capacity: int = 64, on_corrupt: str = "raise"
    ) -> CompressedMatrix:
        """Open a catalogued model for querying (caller closes it).

        ``on_corrupt="degraded"`` keeps a dataset queryable with
        SVD-only answers when its optional artifacts are damaged (see
        :meth:`CompressedMatrix.open`).
        """
        self.entry(name)
        return CompressedMatrix.open(
            self.root / name / "model", pool_capacity, on_corrupt=on_corrupt
        )

    def executor(
        self,
        name: str,
        max_workers: int | None = None,
        pool_capacity: int = 64,
        on_corrupt: str = "raise",
        mode: str = "thread",
    ):
        """Open a dataset behind a concurrent query executor.

        The convenience entry point for concurrent serving.
        ``mode="thread"`` (the default) opens the model in this process
        and hands ownership to a
        :class:`~repro.query.executor.QueryExecutor`, so closing the
        executor (or leaving its ``with`` block) closes the model too.
        ``mode="process"`` returns a
        :class:`~repro.query.process_executor.ProcessQueryExecutor`
        instead: worker processes open the model directory themselves
        and share ``u.mat`` through mmap, scaling past the GIL on
        multi-core hosts (``pool_capacity`` is ignored — mapped reads
        bypass the buffer pool)::

            with warehouse.executor("sales", max_workers=4, mode="process") as pool:
                report = pool.run_batch(queries)
        """
        if mode == "process":
            from repro.query.process_executor import ProcessQueryExecutor

            self.entry(name)
            return ProcessQueryExecutor(
                self.root / name / "model",
                max_workers=max_workers,
                on_corrupt=on_corrupt,
            )
        if mode != "thread":
            raise DatasetError(
                f"unknown executor mode {mode!r}: expected 'thread' or 'process'"
            )
        from repro.query.executor import QueryExecutor

        backend = self.open(name, pool_capacity, on_corrupt=on_corrupt)
        return QueryExecutor(backend, max_workers=max_workers, close_backend=True)

    def fsck(self, name: str, deep: bool = True):
        """Integrity-check one dataset's model directory."""
        from repro.storage.integrity import verify_manifest

        self.entry(name)
        return verify_manifest(self.root / name / "model", deep=deep)

    def open_raw(self, name: str) -> MatrixStore:
        """Open the retained raw store (caller closes it)."""
        entry = self.entry(name)
        if not entry.keeps_raw:
            raise DatasetError(f"dataset {name!r} was ingested without raw data")
        return MatrixStore.open(self.root / name / "raw.mat")

    def verify(self, name: str):
        """Re-audit a dataset's model against its retained raw data."""
        raw = self.open_raw(name)
        model = self.open(name)
        try:
            if model.shape != raw.shape:
                raise DatasetError(
                    f"dataset {name!r}: model shape {model.shape} no longer "
                    f"matches the retained raw data {raw.shape} — the model "
                    "was extended by incremental appends; re-ingest from "
                    "complete data to audit it"
                )
            report = verify_model(raw, model)
        finally:
            model.close()
            raw.close()
        self._entries[name].verified_rmspe = report.rmspe
        self._save_catalog()
        return report

    def drop(self, name: str) -> None:
        """Remove a dataset and its files."""
        self.entry(name)
        shutil.rmtree(self.root / name, ignore_errors=True)
        del self._entries[name]
        self._save_catalog()

    def total_model_bytes(self) -> int:
        """Combined on-disk size of all model directories."""
        total = 0
        for name in self._entries:
            model_dir = self.root / name / "model"
            total += sum(f.stat().st_size for f in model_dir.iterdir())
        return total
