"""Multiprocess query serving over shared mmap'd model memory.

The thread-based :class:`~repro.query.executor.QueryExecutor` buys
safety, not speed: its Python-side dispatch serializes on the GIL, so
four workers answer CPU-bound aggregates at roughly sequential
throughput.  :class:`ProcessQueryExecutor` breaks that ceiling with a
worker *process* pool:

- **Each worker opens the model directory itself** at bootstrap and
  maps ``u.mat`` via ``mmap`` into a zero-copy NumPy view
  (``CompressedMatrix.open(mapped=True)``).  No per-process BufferPool
  duplicates pages: every worker's reads resolve against the same
  kernel page-cache pages, so N workers cost one copy of the model in
  physical memory.  The delta sidecar rides the same trick: a mapped
  open serves the sorted key/value arrays as zero-copy views over a
  shared ``deltas.bin`` mapping (``DeltaFile.map_arrays``), so the
  delta table is also one physical copy across the pool.  Only the
  pinned factors (``lambda.npy``, ``v.npy``) load per worker.
- **Queries are pickled in, results are pickled out.**  The picklable
  boundary is exactly the engine's query/result dataclasses:
  :class:`~repro.query.engine.CellQuery` /
  :class:`~repro.query.engine.AggregateQuery` travel to the worker,
  :class:`~repro.query.engine.QueryResult` (with its serialized
  :class:`~repro.obs.profile.QueryProfile` when telemetry is on)
  travels back.  Query errors are caught per query in the worker and
  re-raised at the caller's slot, so one bad query never poisons a
  chunk.
- **``refresh()`` is a generation bump.**  The parent validates that
  the directory still opens, then increments its generation counter;
  every task carries the generation it was submitted under, and a
  worker seeing a newer generation than its mapping re-opens the
  directory (re-mapping the post-append ``u.mat``) before answering.
  Workers never block on a barrier: each remaps lazily on its next
  task.
- **Crashed workers do not kill serving.**  A dead worker process
  breaks the underlying pool (in-flight futures fail with
  :class:`~concurrent.futures.process.BrokenProcessPool`); the next
  submit transparently rebuilds the pool — counted in
  ``executor.proc.restarts`` — and serving continues.
- **Per-worker metrics merge into** :mod:`repro.obs`: every result
  piggybacks the worker's cumulative engine counters, and
  :meth:`ProcessQueryExecutor.worker_metrics` folds the latest
  snapshot per live worker — plus the accumulated totals of workers
  retired by pool rebuilds, so the merged numbers stay monotonic
  across crashes — into the process registry
  (``executor.proc.fast_path_hits`` / ``executor.proc.streamed``
  gauges beside the parent-side ``executor.proc.queries`` counter).
- **Traces survive the pickle boundary.**  While telemetry is on,
  every query ships with a trace id; the worker runs it inside a
  ``query.worker`` span under that trace and serializes the finished
  span tree back on ``profile.extra["worker_span"]``, which ``map()``
  grafts into the caller's live span — one coherent tree per query
  across the process hop.

Answers are bit-identical to sequential execution: the workers run the
same engine code over the same bytes, and the concurrency bench asserts
equality with ``==``, not approx.

Example::

    with ProcessQueryExecutor("warehouse/sales/model", max_workers=4) as pool:
        report = pool.run_batch(["sum() rows 0:50 cols 0:30", (3, 7)])
    print(report.throughput_qps)
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path

from repro.exceptions import DeadlineExceededError, QueryError
from repro.obs.registry import registry as _obs
from repro.obs.tracing import current_trace_id, graft, new_trace_id, span, trace
from repro.query.engine import QueryEngine, QueryResult
from repro.query.executor import (
    _DEFAULT_MAX_WORKERS,
    BatchReport,
    batch_throughput,
    coerce_query,
    usable_cpu_count,
)

__all__ = ["ProcessQueryExecutor"]

#: Upper bound on chunk size when run_batch picks one automatically.
_MAX_AUTO_CHUNK = 64


def _default_process_workers() -> int:
    # Unlike threads, extra processes beyond the usable cores only add
    # fork/IPC cost for CPU-bound factor math — size to the cores.
    return max(1, min(_DEFAULT_MAX_WORKERS, usable_cpu_count()))


def _default_mp_context() -> str:
    # fork starts workers in milliseconds and inherits the imported
    # interpreter; spawn is the portable fallback.
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


@dataclass(frozen=True)
class _CrashProbe:
    """Test-only chaos payload: the receiving worker exits immediately.

    Exists so the lifecycle tests can kill a real worker process
    through the real dispatch path and assert the executor's
    restart-on-broken-pool behavior; never constructed by production
    code.
    """

    exit_code: int = 17


def _coerce(query):
    """Normalize query forms, letting the chaos probe through to the
    worker's dispatch loop."""
    if isinstance(query, _CrashProbe):
        return query
    return coerce_query(query)


# -- worker process side --------------------------------------------------

#: Per-process worker state: backend, engine, generation, counters.
#: Module-level because ProcessPoolExecutor initializers cannot return
#: state; one dict per worker process, never shared.
_STATE: dict = {}


def _worker_init(
    directory: str, use_fast_path: bool, on_corrupt: str, telemetry: bool
) -> None:
    """Worker bootstrap: open the model and map ``u.mat`` read-only."""
    from repro.core.store import CompressedMatrix

    if telemetry:
        _obs.enable()
    backend = CompressedMatrix.open(directory, on_corrupt=on_corrupt, mapped=True)
    _STATE.clear()
    _STATE.update(
        directory=directory,
        on_corrupt=on_corrupt,
        backend=backend,
        engine=QueryEngine(backend, use_fast_path=use_fast_path),
        generation=0,
        queries=0,
        deadline_drops=0,
    )


def _worker_remap(generation: int) -> None:
    """Re-open the model directory and swap the engine onto it.

    Called when a task carries a newer generation than the worker's
    mapping: the parent's ``refresh()`` means the directory was
    atomically replaced (incremental append), and the old mmap keeps
    serving the *old* inode forever.  Workers are single-threaded, so
    the old backend can be closed as soon as the engine is off it.
    """
    from repro.core.store import CompressedMatrix

    backend = CompressedMatrix.open(
        _STATE["directory"], on_corrupt=_STATE["on_corrupt"], mapped=True
    )
    old = _STATE["backend"]
    _STATE["engine"].refresh(backend)
    _STATE["backend"] = backend
    _STATE["generation"] = generation
    old.close()


def _execute_traced(engine: QueryEngine, query, trace_id: str) -> QueryResult:
    """Run one query under the submitted trace id, capturing the
    worker-side span tree.

    The enclosing ``query.worker`` span adopts ``trace_id`` through the
    :func:`~repro.obs.tracing.trace` context, so the engine's own spans
    nest underneath it with the caller's id.  The finished tree is
    serialized into ``profile.extra["worker_span"]`` — the payload the
    parent grafts back into its live span so ``--profile`` shows one
    coherent caller+worker tree.
    """
    with trace(trace_id):
        with span("query.worker", pid=os.getpid()) as wspan:
            result = engine.execute(query)
    tree = wspan.to_dict() if hasattr(wspan, "to_dict") else None
    if tree is None or result.profile is None:
        return result
    profile = replace(
        result.profile, extra={**result.profile.extra, "worker_span": tree}
    )
    return replace(result, profile=profile)


def _worker_run(tasks: list, generation: int) -> tuple[list, dict]:
    """Execute one chunk of ``(query, trace_id, deadline_ns)`` tasks
    against this worker's mapping.

    Returns ``(outcomes, stats)``: ``outcomes[i]`` is ``("ok", result)``
    or ``("err", exception)`` for ``tasks[i]`` — errors stay
    per-query — and ``stats`` is the worker's cumulative counter
    snapshot, piggybacked so the parent can merge per-worker metrics
    without extra round trips.  A non-None ``trace_id`` (telemetry was
    on in the parent) runs the query inside that trace, and the
    finished span tree travels back on the result's profile.

    A non-None ``deadline_ns`` is a ``time.monotonic_ns`` instant
    (CLOCK_MONOTONIC is system-wide on Linux, so the parent's clock and
    the forked worker's clock agree).  A task whose deadline has
    already passed when the worker picks it up is dropped without
    touching the engine — it fails with
    :class:`~repro.exceptions.DeadlineExceededError` and counts toward
    the worker's ``deadline_drops``, so queued-but-doomed work never
    occupies a worker the serving tier is short of.
    """
    if generation > _STATE["generation"]:
        _worker_remap(generation)
    engine: QueryEngine = _STATE["engine"]
    outcomes = []
    for query, trace_id, deadline_ns in tasks:
        if isinstance(query, _CrashProbe):
            os._exit(query.exit_code)
        if deadline_ns is not None and time.monotonic_ns() >= deadline_ns:
            _STATE["deadline_drops"] += 1
            outcomes.append(
                (
                    "err",
                    DeadlineExceededError(
                        "deadline expired before a worker picked the query up"
                    ),
                )
            )
            continue
        try:
            if trace_id is not None and _obs.enabled:
                outcomes.append(("ok", _execute_traced(engine, query, trace_id)))
            else:
                outcomes.append(("ok", engine.execute(query)))
        except Exception as exc:  # pickled back, re-raised at the slot
            outcomes.append(("err", exc))
    _STATE["queries"] += len(tasks)
    stats = {
        "pid": os.getpid(),
        "generation": _STATE["generation"],
        "queries": _STATE["queries"],
        "deadline_drops": _STATE["deadline_drops"],
        **engine.stats,
    }
    return outcomes, stats


# -- parent process side --------------------------------------------------


class ProcessQueryExecutor:
    """A worker-process pool serving queries from one model directory.

    Accepts the same query forms as the thread executor
    (:class:`CellQuery` / :class:`AggregateQuery` objects, ``(row,
    col)`` tuples, query text) but takes a model *directory*, not an
    open backend: each worker process opens and mmaps the model itself,
    which is what makes the pool scale past the GIL while sharing one
    copy of ``u.mat`` in page cache.

    Args:
        directory: a ``CompressedMatrix`` model directory.
        max_workers: pool size; defaults to ``min(8, usable cores)``
            (affinity-aware, see
            :func:`~repro.query.executor.usable_cpu_count`).
        use_fast_path: forwarded to each worker's engine.
        on_corrupt: forwarded to each worker's
            :meth:`~repro.core.store.CompressedMatrix.open`.
        mp_context: multiprocessing start method (``"fork"`` where
            available, else ``"spawn"``).
        on_rebuild: optional zero-argument callback invoked (outside the
            executor lock is *not* guaranteed — keep it cheap and
            non-blocking) each time a broken pool is replaced.  The
            serving tier feeds its circuit breaker from this: a worker
            crash-loop shows up as a burst of rebuilds.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        max_workers: int | None = None,
        use_fast_path: bool = True,
        on_corrupt: str = "raise",
        mp_context: str | None = None,
        on_rebuild=None,
    ) -> None:
        workers = (
            _default_process_workers() if max_workers is None else int(max_workers)
        )
        if workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._directory = Path(directory)
        self._use_fast_path = bool(use_fast_path)
        self._on_corrupt = on_corrupt
        self._mp_context = mp_context or _default_mp_context()
        # Capture the telemetry switch now: workers enable their own
        # registry at bootstrap, so profiles come back on results.
        self._telemetry = _obs.enabled
        # Fail fast in the parent: a bad directory should raise here,
        # not as N opaque BrokenProcessPool bootstrap failures.
        self._validate_directory()
        self.max_workers = workers
        self._lock = threading.Lock()
        self._shutdown = False
        self._generation = 0
        self._worker_stats: dict[int, dict] = {}
        # Cumulative totals of workers retired by pool rebuilds.  A
        # crash (or any BrokenProcessPool) replaces every worker
        # process and resets their cumulative counters to zero; without
        # folding the dead workers' last snapshots in here, the merged
        # executor.proc.* totals would move backwards after a restart.
        self._retired_totals = {
            "queries": 0,
            "fast_path_hits": 0,
            "streamed": 0,
            "deadline_drops": 0,
        }
        self._on_rebuild = on_rebuild
        #: Pool rebuilds this instance performed (the registry counter
        #: ``executor.proc.restarts`` is process-global; the serving
        #: tier needs a per-executor view).
        self.restarts = 0
        self._pool = self._new_pool()
        _obs.gauge("executor.proc.workers").set(workers)

    def _validate_directory(self) -> None:
        from repro.core.store import CompressedMatrix

        CompressedMatrix.open(
            self._directory, on_corrupt=self._on_corrupt, mapped=True
        ).close()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=multiprocessing.get_context(self._mp_context),
            initializer=_worker_init,
            initargs=(
                str(self._directory),
                self._use_fast_path,
                self._on_corrupt,
                self._telemetry,
            ),
        )

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ProcessQueryExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def directory(self) -> Path:
        """The model directory every worker serves from."""
        return self._directory

    @property
    def generation(self) -> int:
        """Snapshot generation new tasks are answered against."""
        return self._generation

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and terminate the worker pool
        (idempotent).

        Workers own their backends — each process's mapping dies with
        it — so there is nothing to close in the parent; with
        ``wait=True`` queued tasks drain first.
        """
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            pool = self._pool
        pool.shutdown(wait=wait)

    def refresh(self) -> None:
        """Start answering from the directory's current contents.

        After an incremental append atomically swapped the model
        directory, live workers still serve the pre-append snapshot
        through their old mappings.  ``refresh()`` validates that the
        directory (re)opens, then bumps the generation; each worker
        re-maps lazily when its next task carries the newer generation.
        Tasks already queued keep the generation they were submitted
        under, so answers are always wholly-old or wholly-new.
        """
        self._validate_directory()
        with self._lock:
            if self._shutdown:
                raise RuntimeError("ProcessQueryExecutor is shut down")
            self._generation += 1
        _obs.counter("executor.proc.refreshes").inc()

    # -- query dispatch -------------------------------------------------

    @staticmethod
    def _trace_id_for_submit() -> str | None:
        """The trace id a query ships with (None when telemetry is off).

        Inherits the caller's ambient :func:`~repro.obs.tracing.trace`
        context when one is active so e.g. a ``repro batch --profile``
        run joins every query to one trace family; otherwise each query
        gets a fresh id.
        """
        if not _obs.enabled:
            return None
        return current_trace_id() or new_trace_id()

    def submit(self, query, deadline_ns: int | None = None) -> "Future[QueryResult]":
        """Schedule one query; returns a future of its
        :class:`~repro.query.engine.QueryResult`.

        While telemetry is enabled the query travels with a trace id;
        the worker's finished span tree comes back on
        ``result.profile.extra["worker_span"]`` (the future resolves on
        a callback thread, so the caller grafts it if desired —
        :meth:`map` does so automatically).

        ``deadline_ns`` (a ``time.monotonic_ns`` instant) travels with
        the task: if it passes while the query is still queued, the
        worker drops the task and the future fails with
        :class:`~repro.exceptions.DeadlineExceededError` instead of
        wasting a worker on an answer nobody is waiting for.
        """
        inner = self._submit_chunk(
            [(_coerce(query), self._trace_id_for_submit(), deadline_ns)]
        )
        outer: Future = Future()

        def _unwrap(done: Future) -> None:
            exc = done.exception()
            if exc is not None:
                outer.set_exception(exc)
                return
            outcomes, stats = done.result()
            self._record_stats(stats, len(outcomes))
            kind, payload = outcomes[0]
            if kind == "ok":
                outer.set_result(payload)
            else:
                outer.set_exception(payload)

        inner.add_done_callback(_unwrap)
        return outer

    def map(self, queries, chunksize: int = 1) -> list:
        """Run ``queries`` across the pool; results in submission order.

        ``chunksize`` batches several queries into one worker round
        trip — the knob that amortizes pickling/IPC for small queries.
        A failing query raises when its slot is reached, after all
        chunks have been scheduled.  While telemetry is enabled, each
        result's worker span tree is grafted into the caller's active
        span as results are collected, so a profiled batch renders one
        tree across the process hops.
        """
        tasks = [
            (_coerce(query), self._trace_id_for_submit(), None) for query in queries
        ]
        if chunksize < 1:
            raise QueryError(f"chunksize must be >= 1, got {chunksize}")
        chunks = [
            tasks[start : start + chunksize]
            for start in range(0, len(tasks), chunksize)
        ]
        futures = [self._submit_chunk(chunk) for chunk in chunks]
        results = []
        for future in futures:
            outcomes, stats = future.result()
            self._record_stats(stats, len(outcomes))
            for kind, payload in outcomes:
                if kind == "err":
                    raise payload
                if payload.profile is not None:
                    graft(payload.profile.extra.get("worker_span"))
                results.append(payload)
        return results

    def run_batch(self, queries, chunksize: int | None = None) -> BatchReport:
        """Run ``queries`` and report batch throughput alongside the
        ordered results.

        ``chunksize`` defaults to roughly four chunks per worker —
        large enough to amortize IPC, small enough to keep the pool
        load-balanced.
        """
        items = list(queries)
        if chunksize is None:
            chunksize = max(
                1, min(_MAX_AUTO_CHUNK, len(items) // (self.max_workers * 4) or 1)
            )
        start = time.perf_counter()
        results = self.map(items, chunksize=chunksize)
        wall = time.perf_counter() - start
        return BatchReport(
            results=results,
            queries=len(items),
            workers=self.max_workers,
            wall_s=wall,
            throughput_qps=batch_throughput(len(items), wall),
        )

    # -- internals ------------------------------------------------------

    def _submit_chunk(self, chunk: list) -> Future:
        """Enqueue one chunk, transparently rebuilding a broken pool.

        A worker that died (OOM-killed, crashed, ``_CrashProbe``)
        breaks the whole ``ProcessPoolExecutor``: its in-flight futures
        fail with ``BrokenProcessPool`` and every later submit raises.
        Serving must survive a lost worker, so the first submit against
        a broken pool swaps in a fresh one (workers re-bootstrap their
        mappings) and retries once.
        """
        with self._lock:
            if self._shutdown:
                raise RuntimeError("ProcessQueryExecutor is shut down")
            generation = self._generation
            try:
                return self._pool.submit(_worker_run, chunk, generation)
            except BrokenProcessPool:
                self._rebuild_pool_locked()
                return self._pool.submit(_worker_run, chunk, generation)

    def _rebuild_pool_locked(self) -> None:
        """Replace a broken pool; caller holds ``self._lock``.

        The outgoing workers' last piggybacked snapshots are folded
        into ``_retired_totals`` before being dropped: the replacement
        processes restart their cumulative counters at zero, and
        without the fold the merged ``executor.proc.*`` totals would
        regress after every crash/restart instead of staying monotonic.
        """
        self._pool.shutdown(wait=False)
        self._retire_worker_stats_locked()
        self._pool = self._new_pool()
        self.restarts += 1
        _obs.counter("executor.proc.restarts").inc()
        if self._on_rebuild is not None:
            try:
                self._on_rebuild()
            except Exception:
                # A failing observer must not take down query dispatch.
                pass

    def _retire_worker_stats_locked(self) -> None:
        """Accumulate the current workers' totals; caller holds the lock."""
        for snapshot in self._worker_stats.values():
            for key in self._retired_totals:
                self._retired_totals[key] += snapshot.get(key, 0)
        self._worker_stats.clear()

    def _record_stats(self, stats: dict, queries: int) -> None:
        """Fold one worker snapshot into the parent-side accounting."""
        self._worker_stats[stats["pid"]] = stats
        _obs.counter("executor.proc.queries").inc(queries)

    def worker_metrics(self) -> dict:
        """Merge per-worker counters into :mod:`repro.obs`.

        Sums the most recent cumulative snapshot piggybacked by each
        live worker **plus** the accumulated totals of workers retired
        by pool rebuilds, publishes the totals as ``executor.proc.*``
        gauges, and returns the merged dict.  The totals are monotonic
        across crash/restart cycles; ``workers_reporting`` counts only
        the current pool's workers.
        """
        with self._lock:
            snapshots = list(self._worker_stats.values())
            retired = dict(self._retired_totals)
        merged = {
            "workers_reporting": len(snapshots),
            "queries": retired["queries"]
            + sum(s.get("queries", 0) for s in snapshots),
            "fast_path_hits": retired["fast_path_hits"]
            + sum(s.get("fast_path_hits", 0) for s in snapshots),
            "streamed": retired["streamed"]
            + sum(s.get("streamed", 0) for s in snapshots),
            "deadline_drops": retired["deadline_drops"]
            + sum(s.get("deadline_drops", 0) for s in snapshots),
        }
        _obs.gauge("executor.proc.deadline_drops").set(merged["deadline_drops"])
        _obs.gauge("executor.proc.fast_path_hits").set(merged["fast_path_hits"])
        _obs.gauge("executor.proc.streamed").set(merged["streamed"])
        return merged
