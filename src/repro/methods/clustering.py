"""Clustering-based compression (vector quantization).

The paper's clustering competitor (Section 2.2, 5.1): customers are
grouped, each cluster keeps one representative (its centroid), and each
customer stores only a reference to its cluster.  Reconstruction of
cell ``(i, j)`` returns entry ``j`` of customer ``i``'s representative.
Space: ``b*k*M`` for the representatives plus ``N*b`` for the
references — the formula the paper uses in Section 5.1.

Two fitters are provided:

- :class:`HierarchicalClusteringMethod` — from-scratch agglomerative
  clustering with **complete linkage** (the paper's configuration of
  the 'S' package: element-to-cluster distance = maximum distance to
  the cluster's members), implemented with the O(N^2) nearest-neighbor
  chain algorithm.  Quadratic in N, faithfully reproducing the paper's
  observation that it cannot scale past a few thousand rows;
- :class:`KMeansMethod` — Lloyd's algorithm with k-means++ seeding, the
  'faster, approximate' alternative the survey mentions.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import BYTES_PER_VALUE, uncompressed_bytes
from repro.exceptions import BudgetError, ConfigurationError, DatasetError
from repro.methods.base import CompressionMethod, FittedModel


class VQModel(FittedModel):
    """Vector-quantization model: centroids plus per-row assignments."""

    def __init__(self, centroids: np.ndarray, assignments: np.ndarray, num_cols: int) -> None:
        super().__init__(assignments.shape[0], num_cols)
        self._centroids = np.asarray(centroids, dtype=np.float64)
        self._assignments = np.asarray(assignments, dtype=np.int64)

    @property
    def num_clusters(self) -> int:
        return int(self._centroids.shape[0])

    @property
    def assignments(self) -> np.ndarray:
        """Cluster id of each row (read-only view)."""
        view = self._assignments.view()
        view.flags.writeable = False
        return view

    def reconstruct_row(self, row: int) -> np.ndarray:
        self._check_cell(row, 0)
        return self._centroids[self._assignments[row]].copy()

    def reconstruct_cell(self, row: int, col: int) -> float:
        self._check_cell(row, col)
        return float(self._centroids[self._assignments[row], col])

    def reconstruct(self) -> np.ndarray:
        return self._centroids[self._assignments]

    def space_bytes(self) -> int:
        # (b * k * M) + (N * b): representatives + one reference per row.
        return (
            self._centroids.size * BYTES_PER_VALUE
            + self._num_rows * BYTES_PER_VALUE
        )


def clusters_for_budget(num_rows: int, num_cols: int, budget_fraction: float) -> int:
    """How many representatives fit: ``k = (budget - N*b) / (M*b)``."""
    budget = budget_fraction * uncompressed_bytes(num_rows, num_cols)
    remaining = budget - num_rows * BYTES_PER_VALUE
    k = int(remaining // (num_cols * BYTES_PER_VALUE))
    if k < 1:
        raise BudgetError(
            f"budget {budget_fraction:.3%} cannot hold one representative plus "
            f"per-row references for a {num_rows}x{num_cols} matrix"
        )
    return min(k, num_rows)


def _assign_to_centroids(matrix: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Index of the nearest centroid (squared Euclidean) per row."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the ||x||^2 term is
    # constant per row and can be dropped from the argmin.
    cross = matrix @ centroids.T
    c_norms = (centroids * centroids).sum(axis=1)
    return np.argmin(c_norms[None, :] - 2.0 * cross, axis=1)


# ---------------------------------------------------------------------------
# Agglomerative hierarchical clustering (complete linkage, NN-chain)
# ---------------------------------------------------------------------------


def complete_linkage_merges(matrix: np.ndarray) -> list[tuple[int, int, float]]:
    """Full agglomeration history under complete linkage.

    Returns ``N-1`` merges as ``(cluster_a, cluster_b, height)`` where
    cluster ids are row indices (the surviving id after a merge is the
    smaller of the two).  Uses the nearest-neighbor-chain algorithm,
    which is O(N^2) time and valid for complete linkage because the
    linkage is *reducible* (merging two clusters never brings them
    closer to a third).
    """
    arr = np.asarray(matrix, dtype=np.float64)
    n = arr.shape[0]
    if n < 1:
        raise ConfigurationError("need at least one row to cluster")
    if n == 1:
        return []
    # Pairwise Euclidean distances.
    sq = (arr * arr).sum(axis=1)
    d2 = sq[:, None] - 2.0 * (arr @ arr.T) + sq[None, :]
    np.fill_diagonal(d2, np.inf)
    dist = np.sqrt(np.maximum(d2, 0.0))
    np.fill_diagonal(dist, np.inf)

    active = np.ones(n, dtype=bool)
    merges: list[tuple[int, int, float]] = []
    chain: list[int] = []
    remaining = n
    while remaining > 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        top = chain[-1]
        row = dist[top].copy()
        row[~active] = np.inf
        nearest = int(np.argmin(row))
        if len(chain) > 1 and row[chain[-2]] <= row[nearest]:
            nearest = chain[-2]
        if len(chain) > 1 and nearest == chain[-2]:
            # Reciprocal nearest neighbors: merge.
            b = chain.pop()
            a = chain.pop()
            a, b = (a, b) if a < b else (b, a)
            height = float(dist[a, b])
            merges.append((a, b, height))
            # Complete linkage update: d(a∪b, x) = max(d(a,x), d(b,x)).
            merged = np.maximum(dist[a], dist[b])
            dist[a, :] = merged
            dist[:, a] = merged
            dist[a, a] = np.inf
            active[b] = False
            dist[b, :] = np.inf
            dist[:, b] = np.inf
            remaining -= 1
        else:
            chain.append(nearest)
    return merges


def cut_merges(merges: list[tuple[int, int, float]], num_rows: int, k: int) -> np.ndarray:
    """Labels in ``[0, k)`` from the first ``N - k`` merges by height."""
    if not 1 <= k <= num_rows:
        raise ConfigurationError(f"k must be in [1, {num_rows}], got {k}")
    parent = np.arange(num_rows)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b, _height in sorted(merges, key=lambda m: m[2])[: num_rows - k]:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)
    roots = np.array([find(i) for i in range(num_rows)])
    _, labels = np.unique(roots, return_inverse=True)
    return labels


class HierarchicalClusteringMethod(CompressionMethod):
    """Complete-linkage agglomerative clustering compressor.

    Args:
        max_rows: guard rail reproducing the paper's scale-up failure —
            fitting more rows than this raises :class:`DatasetError`
            ('the current version of the clustering method could not
            scale up beyond N = 3000', Section 5.3).
    """

    name = "hc"

    def __init__(self, max_rows: int = 3000) -> None:
        self.max_rows = max_rows

    def fit(self, matrix: np.ndarray, budget_fraction: float) -> VQModel:
        arr = self._validate(matrix, budget_fraction)
        num_rows, num_cols = arr.shape
        if num_rows > self.max_rows:
            raise DatasetError(
                f"hierarchical clustering is quadratic and capped at "
                f"{self.max_rows} rows; got {num_rows}"
            )
        k = clusters_for_budget(num_rows, num_cols, budget_fraction)
        merges = complete_linkage_merges(arr)
        labels = cut_merges(merges, num_rows, k)
        centroids = np.vstack(
            [arr[labels == c].mean(axis=0) for c in range(labels.max() + 1)]
        )
        return VQModel(centroids, labels, num_cols)


class KMeansMethod(CompressionMethod):
    """Lloyd's k-means with k-means++ seeding.

    Args:
        max_iterations: Lloyd iteration cap.
        tol: relative centroid-movement convergence threshold.
        seed: PRNG seed for the k-means++ initialization.
    """

    name = "kmeans"

    def __init__(self, max_iterations: int = 50, tol: float = 1e-6, seed: int = 42) -> None:
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.max_iterations = max_iterations
        self.tol = tol
        self.seed = seed

    def _seed_centroids(self, arr: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
        """k-means++: spread initial centroids by squared-distance sampling."""
        n = arr.shape[0]
        centroids = np.empty((k, arr.shape[1]))
        centroids[0] = arr[rng.integers(n)]
        closest = ((arr - centroids[0]) ** 2).sum(axis=1)
        for i in range(1, k):
            total = closest.sum()
            if total <= 0:
                centroids[i:] = centroids[0]
                break
            probs = closest / total
            centroids[i] = arr[rng.choice(n, p=probs)]
            dist = ((arr - centroids[i]) ** 2).sum(axis=1)
            closest = np.minimum(closest, dist)
        return centroids

    def fit(self, matrix: np.ndarray, budget_fraction: float) -> VQModel:
        arr = self._validate(matrix, budget_fraction)
        num_rows, num_cols = arr.shape
        k = clusters_for_budget(num_rows, num_cols, budget_fraction)
        rng = np.random.default_rng(self.seed)
        centroids = self._seed_centroids(arr, k, rng)
        labels = _assign_to_centroids(arr, centroids)
        for _ in range(self.max_iterations):
            new_centroids = centroids.copy()
            for c in range(k):
                members = arr[labels == c]
                if members.shape[0]:
                    new_centroids[c] = members.mean(axis=0)
            movement = float(np.abs(new_centroids - centroids).max())
            scale = max(1.0, float(np.abs(centroids).max()))
            centroids = new_centroids
            new_labels = _assign_to_centroids(arr, centroids)
            if movement <= self.tol * scale and np.array_equal(new_labels, labels):
                labels = new_labels
                break
            labels = new_labels
        return VQModel(centroids, labels, num_cols)
