"""Tests for the persistent CompressedMatrix store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CompressedMatrix, SVDCompressor, SVDDCompressor
from repro.data import phone_matrix
from repro.exceptions import FormatError, QueryError


@pytest.fixture(scope="module")
def data():
    return phone_matrix(150)


@pytest.fixture(scope="module")
def svdd_model(data):
    return SVDDCompressor(budget_fraction=0.10).fit(data)


@pytest.fixture()
def saved(tmp_path, svdd_model):
    store = CompressedMatrix.save(svdd_model, tmp_path / "model")
    yield store
    store.close()


class TestPersistence:
    def test_save_open_roundtrip(self, tmp_path, svdd_model, data):
        directory = tmp_path / "model"
        CompressedMatrix.save(svdd_model, directory).close()
        with CompressedMatrix.open(directory) as store:
            assert store.shape == data.shape
            assert store.cutoff == svdd_model.cutoff
            assert store.num_deltas == svdd_model.num_deltas
            assert np.allclose(store.reconstruct_all(), svdd_model.reconstruct())

    def test_svd_model_without_deltas(self, tmp_path, data):
        model = SVDCompressor(k=6).fit(data)
        with CompressedMatrix.save(model, tmp_path / "svd") as store:
            assert store.num_deltas == 0
            assert store.cell(3, 3) == pytest.approx(model.reconstruct_cell(3, 3))

    def test_missing_meta_rejected(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FormatError):
            CompressedMatrix.open(tmp_path / "empty")

    def test_meta_shape_mismatch_rejected(self, tmp_path, svdd_model):
        directory = tmp_path / "model"
        CompressedMatrix.save(svdd_model, directory).close()
        meta = json.loads((directory / "meta.json").read_text())
        meta["rows"] += 1
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(FormatError):
            CompressedMatrix.open(directory)

    def test_missing_delta_file_rejected(self, tmp_path, svdd_model):
        directory = tmp_path / "model"
        CompressedMatrix.save(svdd_model, directory).close()
        (directory / "deltas.bin").unlink()
        with pytest.raises(FormatError):
            CompressedMatrix.open(directory)


class TestQueries:
    def test_cell_matches_model(self, saved, svdd_model):
        for row, col in [(0, 0), (17, 200), (149, 365), (75, 100)]:
            assert saved.cell(row, col) == pytest.approx(
                svdd_model.reconstruct_cell(row, col), abs=1e-9
            )

    def test_row_matches_model(self, saved, svdd_model):
        assert np.allclose(saved.row(42), svdd_model.reconstruct_row(42), atol=1e-9)

    def test_column_matches_model(self, saved, svdd_model):
        full = svdd_model.reconstruct()
        assert np.allclose(saved.column(17), full[:, 17], atol=1e-9)

    def test_bounds_checked(self, saved):
        with pytest.raises(QueryError):
            saved.cell(150, 0)
        with pytest.raises(QueryError):
            saved.cell(0, 366)
        with pytest.raises(QueryError):
            saved.row(-1)
        with pytest.raises(QueryError):
            saved.column(366)

    def test_space_bytes_positive(self, saved, svdd_model):
        assert saved.space_bytes() == svdd_model.space_bytes()


class TestDiskAccessClaim:
    """Section 4.1: 'only a single disk access is required' per cell."""

    def test_one_page_miss_per_cold_row(self, tmp_path, svdd_model):
        store = CompressedMatrix.save(svdd_model, tmp_path / "m")
        store.u_pool_stats.reset()
        store.stats["zero_row_skips"] = 0
        # 30 distinct cold rows -> one page miss each, except rows the
        # Section 6.2 zero-row flag answers without touching the disk.
        for row in range(0, 150, 5):
            store.cell(row, 100)
        assert store.u_pool_stats.misses + store.stats["zero_row_skips"] == 30
        assert store.u_pool_stats.misses <= 30
        store.close()

    def test_repeated_cell_hits_cache(self, tmp_path, svdd_model):
        store = CompressedMatrix.save(svdd_model, tmp_path / "m")
        store.cell(5, 5)
        store.u_pool_stats.reset()
        store.cell(5, 99)  # same U row: zero further misses
        assert store.u_pool_stats.misses == 0
        store.close()

    def test_u_row_fits_one_page(self, saved):
        # The U store is created with page_size >= one row of U.
        assert saved._u_store.pages_per_row() == 1


class TestReconstructRange:
    def test_matches_full_reconstruction(self, saved, svdd_model):
        rows, cols = [3, 17, 149], [0, 100, 365]
        block = saved.reconstruct_range(rows, cols)
        full = svdd_model.reconstruct()
        assert np.allclose(block, full[np.ix_(rows, cols)], atol=1e-9)

    def test_single_cell_range(self, saved):
        block = saved.reconstruct_range([5], [7])
        assert block.shape == (1, 1)
        assert block[0, 0] == pytest.approx(saved.cell(5, 7))

    def test_includes_delta_corrections(self, saved, svdd_model):
        outliers = svdd_model.outlier_cells()
        if outliers:
            row, col, _delta = outliers[0]
            block = saved.reconstruct_range([row], [col])
            assert block[0, 0] == pytest.approx(
                svdd_model.reconstruct_cell(row, col), abs=1e-9
            )

    def test_bounds_checked(self, saved):
        with pytest.raises(QueryError):
            saved.reconstruct_range([9999], [0])
        with pytest.raises(QueryError):
            saved.reconstruct_range([0], [])


class TestBloomFprPersistence:
    """The filter's target FPR must survive a save/open round trip."""

    def test_strict_fpr_round_trips(self, tmp_path, data):
        model = SVDDCompressor(budget_fraction=0.10, bloom_fpr=0.001).fit(data)
        assert model.num_deltas > 0 and model.bloom is not None
        directory = tmp_path / "strict"
        CompressedMatrix.save(model, directory).close()
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["bloom_fpr"] == 0.001
        with CompressedMatrix.open(directory) as store:
            assert store._bloom.false_positive_rate == 0.001
            # A stricter FPR buys a larger bit array than the default.
            assert store._bloom.num_bits == model.bloom.num_bits

    def test_old_directory_without_fpr_defaults(self, tmp_path, svdd_model):
        directory = tmp_path / "legacy"
        CompressedMatrix.save(svdd_model, directory).close()
        meta = json.loads((directory / "meta.json").read_text())
        del meta["bloom_fpr"]  # simulate a pre-upgrade directory
        (directory / "meta.json").write_text(json.dumps(meta))
        with CompressedMatrix.open(directory) as store:
            assert store._bloom is not None
            assert store._bloom.false_positive_rate == 0.01

    def test_svd_model_records_no_fpr(self, tmp_path, data):
        model = SVDCompressor(k=4).fit(data)
        directory = tmp_path / "svd"
        CompressedMatrix.save(model, directory).close()
        meta = json.loads((directory / "meta.json").read_text())
        assert meta["bloom_fpr"] is None


class TestBatchCells:
    def test_cells_match_scalar_cell(self, saved):
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 150, size=40)
        cols = rng.integers(0, 366, size=40)
        batch = saved.cells(rows, cols)
        scalar = [saved.cell(int(r), int(c)) for r, c in zip(rows, cols)]
        np.testing.assert_allclose(batch, scalar, rtol=1e-12, atol=1e-12)

    def test_duplicate_rows_coalesce_page_reads(self, tmp_path, svdd_model):
        store = CompressedMatrix.save(svdd_model, tmp_path / "m")
        store.u_pool_stats.reset()
        store.cells([5, 5, 5, 5], [0, 1, 2, 3])
        assert store.u_pool_stats.accesses == 1  # one page for all four cells
        store.close()

    def test_misaligned_batch_rejected(self, saved):
        with pytest.raises(QueryError):
            saved.cells([1, 2], [3])

    def test_batch_bounds_checked(self, saved):
        with pytest.raises(QueryError):
            saved.cells([0, 9999], [0, 0])
