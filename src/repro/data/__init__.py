"""Datasets.

The paper evaluates on two real datasets we cannot obtain:

- ``phone100K`` — proprietary AT&T customer calling volumes
  (100,000 customers x 366 days) plus row subsets ``phone1000``,
  ``phone2000``, ...;
- ``stocks`` — 381 stocks x 128 daily closing prices.

Per the substitution policy in DESIGN.md, this package generates
synthetic equivalents that reproduce the structural properties the
paper's results depend on: low-rank behavioural patterns and
Zipf-skewed volumes with bursty outliers for the phone data, and
correlated random walks with a dominant market factor for the stocks
data.  Generators are deterministic in their seed, and row subsets are
*prefix-stable*: ``phone_dataset(n)`` equals the first ``n`` rows of
``phone_dataset(m)`` for ``n <= m``, mirroring how the paper carved
``phone2000`` out of ``phone100K``.
"""

from repro.data.documents import DocumentsConfig, document_topics, documents_matrix
from repro.data.patients import PatientsConfig, patient_field_names, patients_matrix
from repro.data.phone import PhoneConfig, phone_matrix
from repro.data.registry import Dataset, dataset_names, load_dataset
from repro.data.stocks import StocksConfig, stocks_matrix
from repro.data.toy import TOY_COLUMNS, TOY_CUSTOMERS, toy_matrix

__all__ = [
    "Dataset",
    "DocumentsConfig",
    "document_topics",
    "documents_matrix",
    "PatientsConfig",
    "patient_field_names",
    "patients_matrix",
    "PhoneConfig",
    "StocksConfig",
    "TOY_COLUMNS",
    "TOY_CUSTOMERS",
    "dataset_names",
    "load_dataset",
    "phone_matrix",
    "stocks_matrix",
    "toy_matrix",
]
