"""Matrixed explain/execute parity suite.

The planner's whole reason to exist: for every combination of backend,
engine mode, aggregate function, selection shape, and error budget,
``explain`` must name exactly the route ``aggregate`` takes — and when
no route is admissible, both must raise the same
:class:`RouteUnavailableError`.  The matrix deliberately spans the
summary store's three states (fresh, stale-after-append, absent) and
both engine delta modes, because those were the axes along which the
pre-planner call sites diverged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedMatrix, SVDDCompressor
from repro.core.build import build_compressed
from repro.core.update import append_columns
from repro.exceptions import RouteUnavailableError
from repro.query import AggregateQuery, QueryEngine, Selection

FUNCTIONS = ("sum", "avg", "count", "min", "max", "stddev")

SELECTIONS = {
    "full": Selection(),
    "row-band": Selection(rows=range(0, 12)),
    "sub-rect": Selection(rows=range(4, 30), cols=range(2, 14)),
}

BUDGETS = {"exact-only": None, "zero": 0.0, "loose": 0.9}


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(90125)
    x = rng.standard_normal((64, 5)) @ rng.standard_normal((5, 20))
    x[7, 3] += 200.0
    x[33, 15] -= 180.0
    x[60, 1] += 250.0
    return x


@pytest.fixture(scope="module")
def svdd_model(data):
    model = SVDDCompressor(budget_fraction=0.25).fit(data)
    assert model.num_deltas > 0
    return model


@pytest.fixture(scope="module")
def fresh_dir(tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("parity") / "fresh"
    build_compressed(data, directory, budget_fraction=0.25).close()
    return directory


@pytest.fixture(scope="module")
def stale_dir(tmp_path_factory, data):
    """A model whose summaries were NOT refreshed across an append.

    The deferred refresh carries the files forward stamped with the
    *old* coverage, so full-axis selections become partial hits — the
    ``summary+factor`` route's natural habitat.
    """
    directory = tmp_path_factory.mktemp("parity") / "stale"
    build_compressed(data, directory, budget_fraction=0.25).close()
    rng = np.random.default_rng(5)
    append_columns(
        directory,
        rng.standard_normal((data.shape[0], 2)),
        refresh_summaries=False,
    )
    return directory


@pytest.fixture(scope="module")
def backends(data, svdd_model, fresh_dir, stale_dir):
    """name -> (backend, engine_kwargs) covering the summary states."""
    fresh = CompressedMatrix.open(fresh_dir)
    stale = CompressedMatrix.open(stale_dir)
    assert fresh.summaries is not None, "fresh model must carry summaries"
    assert stale.summaries is not None and not stale.summaries.fresh, (
        "deferred append must leave partially-covered summaries"
    )
    yield {
        "ndarray": (data, {}),
        "svdd-in-memory": (svdd_model, {}),
        "compressed-fresh": (fresh, {}),
        "compressed-stale": (stale, {}),
        "compressed-no-summaries": (fresh, {"use_summaries": False}),
    }
    fresh.close()
    stale.close()


def _attempt(callable_):
    """(outcome, payload): outcome is 'ok' or 'unavailable'."""
    try:
        return "ok", callable_()
    except RouteUnavailableError as exc:
        return "unavailable", str(exc)


@pytest.mark.parametrize("include_deltas", [True, False], ids=["deltas", "svd-only"])
@pytest.mark.parametrize(
    "backend_name",
    [
        "ndarray",
        "svdd-in-memory",
        "compressed-fresh",
        "compressed-stale",
        "compressed-no-summaries",
    ],
)
def test_explain_matches_execute_everywhere(backends, backend_name, include_deltas):
    backend, kwargs = backends[backend_name]
    engine = QueryEngine(backend, include_deltas=include_deltas, **kwargs)
    reference = QueryEngine(backend, use_fast_path=False, use_summaries=False)
    for function in FUNCTIONS:
        for sel_name, selection in SELECTIONS.items():
            for budget_name, budget in BUDGETS.items():
                label = f"{backend_name}/{function}/{sel_name}/{budget_name}"
                query = AggregateQuery(function, selection, max_rmspe=budget)
                explained, plan = _attempt(lambda: engine.explain(query))
                executed, result = _attempt(lambda: engine.aggregate(query))

                # 1. Explain and execute agree on answerability.
                assert explained == executed, (
                    f"{label}: explain={explained} but execute={executed}"
                )
                if explained == "unavailable":
                    continue

                # 2. The explained route IS the executed route, with
                #    the same achieved error bound.
                assert plan["path"] == result.route, (
                    f"{label}: explained {plan['path']!r} "
                    f"but executed {result.route!r}"
                )
                assert plan["error_bound"] == result.error_bound, label
                assert plan["candidates"][0]["route"] == plan["path"], label
                assert plan["cells"] == result.cells_touched, label

                # 3. A zero budget provably never yields the svd route.
                if budget == 0.0:
                    assert result.route != "svd", label
                    assert result.error_bound == 0.0, label

                # 4. Every exact answer agrees with the delta-corrected
                #    streaming reference on the same backend.
                if result.error_bound == 0.0:
                    expected = reference.aggregate(
                        AggregateQuery(function, selection)
                    )
                    assert result.value == pytest.approx(
                        expected.value, rel=1e-9, abs=1e-9
                    ), label


def test_matrix_covers_every_route(backends):
    """Sanity check on the matrix itself: across all combinations the
    planner exercises all five routes (no silently dead lattice arm)."""
    seen = set()
    for backend_name, (backend, kwargs) in backends.items():
        for include_deltas in (True, False):
            engine = QueryEngine(backend, include_deltas=include_deltas, **kwargs)
            for function in FUNCTIONS:
                for selection in SELECTIONS.values():
                    for budget in BUDGETS.values():
                        query = AggregateQuery(function, selection, max_rmspe=budget)
                        outcome, plan = _attempt(lambda: engine.explain(query))
                        if outcome == "ok":
                            seen.add(plan["path"])
    assert {"summary", "summary+factor", "factor", "svd", "stream"} <= seen


def test_stale_summaries_take_partial_route_without_divergence(backends):
    """The partially-covered model must not hand out full rollup hits —
    the residual columns the rollups miss get streamed and merged, and
    explain names that exact decomposition via the same planner."""
    backend, kwargs = backends["compressed-stale"]
    engine = QueryEngine(backend, **kwargs)

    # A factor-capable aggregate: the full rollup hit must be off the
    # table, summary+factor must be priced as an exact candidate, and
    # whatever wins, explain and execute agree.
    avg = AggregateQuery("avg", Selection(rows=range(0, 12)))
    plan = engine.explain(avg)
    assert plan["path"] != "summary"
    candidates = {c["route"]: c for c in plan["candidates"]}
    assert "summary" not in candidates
    assert candidates["summary+factor"]["error_bound"] == 0.0
    assert candidates["summary+factor"]["row_fetches"] > 0  # residual stream
    assert engine.aggregate(avg).route == plan["path"]

    # min cannot use factor space, and over the full matrix the rollup
    # core plus a two-column residual beats streaming every cell — the
    # partial summary route wins outright.
    low = AggregateQuery("min", Selection())
    plan = engine.explain(low)
    assert plan["path"] == "summary+factor"
    result = engine.aggregate(low)
    assert result.route == "summary+factor"
    assert result.error_bound == 0.0
    assert engine.stats["summary_partial"] == 1
    assert engine.stats["summary_hits"] == 0
    reference = QueryEngine(backend, use_fast_path=False, use_summaries=False)
    assert result.value == pytest.approx(
        reference.aggregate(AggregateQuery("min", low.selection)).value,
        rel=1e-9,
    )
