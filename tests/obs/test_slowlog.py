"""Tests for the threshold-triggered slow-query log."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core import SVDDCompressor
from repro.obs.slowlog import SlowQueryLog, slow_query_log
from repro.query import AggregateQuery, CellQuery, QueryEngine, Selection


@pytest.fixture()
def armed_log():
    """The process-wide slow log armed at threshold zero, then disarmed."""
    stream = io.StringIO()
    slow_query_log.configure(0.0, stream=stream)
    try:
        yield slow_query_log, stream
    finally:
        slow_query_log.disable()


def _tiny_engine(rng):
    matrix = rng.standard_normal((40, 4)) @ rng.standard_normal((4, 20))
    return QueryEngine(SVDDCompressor(budget_fraction=0.2).fit(matrix))


class TestConfiguration:
    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert log.threshold_ns is None

    def test_unconfigured_records_nothing(self):
        log = SlowQueryLog()

        class Profile:
            total_ns = 10**12
            trace_id = "x"

        assert log.maybe_record(CellQuery(0, 0), Profile()) is None
        assert len(log.recent) == 0

    def test_configure_and_disable(self):
        log = SlowQueryLog()
        log.configure(2.5)
        assert log.enabled
        assert log.threshold_ns == 2_500_000
        log.disable()
        assert not log.enabled
        assert len(log.recent) == 0

    def test_capacity_bounds_ring(self):
        log = SlowQueryLog(capacity=3)
        log.configure(0.0)

        class Profile:
            total_ns = 1
            trace_id = ""

            @staticmethod
            def to_dict():
                return {}

        for index in range(10):
            log.maybe_record(CellQuery(index, 0), Profile())
        assert len(log.recent) == 3
        assert log.recent[-1]["query"] == "cell(9, 0)"


class TestEngineIntegration:
    def test_slow_query_lands_with_full_profile(self, rng, enabled_registry, armed_log):
        log, stream = armed_log
        engine = _tiny_engine(rng)
        engine.aggregate(
            AggregateQuery("avg", Selection(rows=range(0, 10), cols=range(0, 5)))
        )
        records = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert records, "threshold-zero query did not land in the slow log"
        record = records[-1]
        assert record["event"] == "query.slow"
        assert record["query"] == "avg() rows 0:10 cols 0:5"
        assert record["total_ms"] > 0
        assert record["time"].endswith("+00:00")
        # Full forensic payload: profile and span tree, joined by trace id.
        assert record["profile"]["path"] in ("factor", "stream")
        assert record["span_tree"]["name"] == "query.aggregate"
        assert record["trace_id"] == record["span_tree"]["trace_id"]
        assert enabled_registry.snapshot()["counters"]["slowlog.records"] >= 1

    def test_cell_query_formatted(self, rng, enabled_registry, armed_log):
        log, stream = armed_log
        engine = _tiny_engine(rng)
        engine.cell(CellQuery(3, 5))
        record = json.loads(stream.getvalue().splitlines()[-1])
        assert record["query"] == "cell(3, 5)"
        assert record["span_tree"]["name"] == "query.cell"

    def test_fast_queries_below_threshold_not_logged(self, rng, enabled_registry):
        stream = io.StringIO()
        slow_query_log.configure(60_000.0, stream=stream)  # one minute
        try:
            engine = _tiny_engine(rng)
            engine.cell(CellQuery(0, 0))
            assert stream.getvalue() == ""
            assert len(slow_query_log.recent) == 0
        finally:
            slow_query_log.disable()

    def test_disabled_telemetry_means_no_slow_records(self, rng):
        from repro.obs import registry

        assert not registry.enabled
        stream = io.StringIO()
        slow_query_log.configure(0.0, stream=stream)
        try:
            engine = _tiny_engine(rng)
            engine.cell(CellQuery(0, 0))
            # No profile is built while telemetry is off, so the engine
            # never reaches the slow-log hook.
            assert stream.getvalue() == ""
        finally:
            slow_query_log.disable()

    def test_records_append_to_jsonl_file(self, tmp_path, rng, enabled_registry):
        path = tmp_path / "slow.jsonl"
        slow_query_log.configure(0.0, path=path)
        try:
            engine = _tiny_engine(rng)
            engine.cell(CellQuery(1, 1))
            engine.cell(CellQuery(2, 2))
        finally:
            slow_query_log.disable()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["query"] == "cell(2, 2)"


class TestQueryFormatting:
    def test_open_ended_selection_renders_colons(self):
        query = AggregateQuery("sum", Selection(rows=None, cols=range(3, 9)))
        assert SlowQueryLog._format_query(query) == "sum() rows : cols 3:9"

    def test_unknown_object_falls_back_to_repr(self):
        assert SlowQueryLog._format_query(42) == "42"
