"""Tests for the Eq. 9 space accounting."""

from __future__ import annotations

import pytest

from repro.core import space
from repro.exceptions import BudgetError, ConfigurationError


class TestSVDSpace:
    def test_eq_9_formula(self):
        # (N*k + k + k*M) * b
        assert space.svd_space_bytes(100, 10, 3) == (300 + 3 + 30) * 8

    def test_fraction_approximates_k_over_m(self):
        """Eq. 9's approximation s ~ k/M when N >> M >= k."""
        fraction = space.svd_space_fraction(1_000_000, 366, 37)
        assert fraction == pytest.approx(37 / 366, rel=0.01)

    def test_zero_k(self):
        assert space.svd_space_bytes(10, 10, 0) == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            space.svd_space_bytes(10, 10, -1)

    def test_bad_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            space.uncompressed_bytes(0, 5)

    def test_custom_bytes_per_value(self):
        assert space.svd_space_bytes(10, 5, 2, bytes_per_value=4) == (20 + 2 + 10) * 4


class TestMaxKForBudget:
    def test_exact_boundary(self):
        # per-component cost = (N + 1 + M) * b = (100+1+10)*8 = 888 bytes
        # uncompressed = 100*10*8 = 8000 bytes
        assert space.max_k_for_budget(100, 10, 888 / 8000) == 1
        assert space.max_k_for_budget(100, 10, 887 / 8000 + 2 * 888 / 8000) == 2

    def test_capped_at_rank_bound(self):
        # Full budget: floor(N*M / (N+1+M)) components fit, capped at min(N, M).
        # Even at s=1.0, k=M never fits: N*M + M + M^2 > N*M.
        assert space.max_k_for_budget(100, 10, 1.0) == 9
        assert space.max_k_for_budget(10000, 10, 1.0) == 9
        assert space.max_k_for_budget(5, 100, 1.0) == 4
        # The min(N, M) cap binds when one dimension is tiny vs the budget.
        assert space.max_k_for_budget(2, 100, 1.0) == 1

    def test_too_small_budget_raises(self):
        with pytest.raises(BudgetError):
            space.max_k_for_budget(100, 10, 0.001)

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            space.max_k_for_budget(10, 10, 0.0)
        with pytest.raises(ConfigurationError):
            space.max_k_for_budget(10, 10, 1.5)


class TestDeltaBudget:
    def test_remaining_budget_buys_deltas(self):
        # budget 10% of 1000x100x8 = 80_000 B; k=1 costs (1000+1+100)*8 = 8808 B
        gamma = space.delta_budget(1000, 100, 1, 0.10)
        assert gamma == (80_000 - 8808) // 16

    def test_never_negative(self):
        assert space.delta_budget(1000, 100, 99, 0.01) == 0

    def test_monotone_decreasing_in_k(self):
        gammas = [space.delta_budget(500, 50, k, 0.2) for k in range(1, 10)]
        assert gammas == sorted(gammas, reverse=True)

    def test_svdd_space_combines(self):
        assert space.svdd_space_bytes(100, 10, 2, 5) == space.svd_space_bytes(
            100, 10, 2
        ) + 5 * space.DELTA_RECORD_BYTES

    def test_negative_deltas_rejected(self):
        with pytest.raises(ConfigurationError):
            space.svdd_space_bytes(10, 10, 1, -1)
