"""Adapters exposing the core SVD/SVDD compressors through the common
:class:`~repro.methods.base.CompressionMethod` interface, so the Fig. 6
sweep can treat all four competitors uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import SVDDModel, SVDModel
from repro.core.svd import SVDCompressor
from repro.core.svdd import SVDDCompressor
from repro.linalg import SymmetricEigensolver
from repro.methods.base import CompressionMethod, FittedModel


class _SVDFitted(FittedModel):
    """Wraps an :class:`SVDModel` (or :class:`SVDDModel`) as a FittedModel."""

    def __init__(self, model: SVDModel | SVDDModel) -> None:
        super().__init__(model.num_rows, model.num_cols)
        self.model = model

    def reconstruct(self) -> np.ndarray:
        return self.model.reconstruct()

    def reconstruct_row(self, row: int) -> np.ndarray:
        return self.model.reconstruct_row(row)

    def reconstruct_cell(self, row: int, col: int) -> float:
        return self.model.reconstruct_cell(row, col)

    def space_bytes(self) -> int:
        return self.model.space_bytes()


class SVDMethod(CompressionMethod):
    """Plain truncated SVD under the common interface ('svd' in Fig. 6)."""

    name = "svd"

    def __init__(self, eigensolver: SymmetricEigensolver | None = None) -> None:
        self.eigensolver = eigensolver

    def fit(self, matrix: np.ndarray, budget_fraction: float) -> _SVDFitted:
        arr = self._validate(matrix, budget_fraction)
        compressor = SVDCompressor(
            budget_fraction=budget_fraction, eigensolver=self.eigensolver
        )
        return _SVDFitted(compressor.fit(arr))


class SVDDMethod(CompressionMethod):
    """SVD with Deltas under the common interface ('delta' in Fig. 6)."""

    name = "delta"

    def __init__(
        self,
        eigensolver: SymmetricEigensolver | None = None,
        use_bloom: bool = True,
    ) -> None:
        self.eigensolver = eigensolver
        self.use_bloom = use_bloom

    def fit(self, matrix: np.ndarray, budget_fraction: float) -> _SVDFitted:
        arr = self._validate(matrix, budget_fraction)
        compressor = SVDDCompressor(
            budget_fraction=budget_fraction,
            eigensolver=self.eigensolver,
            use_bloom=self.use_bloom,
        )
        return _SVDFitted(compressor.fit(arr))
