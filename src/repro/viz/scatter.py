"""Scatter-plot projections and ASCII rendering (paper Fig. 11)."""

from __future__ import annotations

import numpy as np

from repro.core.model import SVDModel
from repro.core.svd import SVDCompressor
from repro.exceptions import ConfigurationError


def scatter_coordinates(
    source: np.ndarray | SVDModel, dimensions: int = 2
) -> np.ndarray:
    """Coordinates of every row in the leading SVD dimensions.

    Accepts either a raw matrix (an SVD is computed) or an
    already-fitted :class:`SVDModel` with at least ``dimensions``
    components.  Row ``i`` maps to ``u[i, :d] * lambda[:d]``
    (Observation 3.4).
    """
    if dimensions < 1:
        raise ConfigurationError(f"dimensions must be >= 1, got {dimensions}")
    if isinstance(source, SVDModel):
        model = source
    else:
        model = SVDCompressor(k=dimensions).fit(np.asarray(source, dtype=np.float64))
    return model.project_rows(min(dimensions, model.cutoff))


def outlier_rows(coordinates: np.ndarray, z_threshold: float = 4.0) -> np.ndarray:
    """Indices of scatter points unusually far from the point cloud.

    A point is an outlier when its distance from the centroid exceeds
    ``z_threshold`` times the RMS distance — the 'exceptions' and
    'distractions' the paper reads off Fig. 11.
    """
    coords = np.asarray(coordinates, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[0] == 0:
        raise ConfigurationError("coordinates must be a non-empty 2-d array")
    center = coords.mean(axis=0)
    dist = np.sqrt(((coords - center) ** 2).sum(axis=1))
    rms = float(np.sqrt((dist * dist).mean()))
    if rms == 0.0:
        return np.array([], dtype=np.int64)
    return np.flatnonzero(dist > z_threshold * rms)


def ascii_scatter(
    coordinates: np.ndarray,
    width: int = 72,
    height: int = 24,
    mark_outliers: bool = True,
) -> str:
    """Render 2-d scatter coordinates as an ASCII plot.

    Density is binned into characters `` .:+#`` (more points = darker);
    outliers (per :func:`outlier_rows`) are drawn as ``@``.  Axes cross
    at the data origin when it is in range.
    """
    coords = np.asarray(coordinates, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] < 2:
        raise ConfigurationError("ascii_scatter needs (n, >=2) coordinates")
    if width < 8 or height < 4:
        raise ConfigurationError("plot must be at least 8 x 4 characters")
    x, y = coords[:, 0], coords[:, 1]
    x_min, x_max = float(x.min()), float(x.max())
    y_min, y_max = float(y.min()), float(y.max())
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    cols = np.clip(((x - x_min) / x_span * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((y_max - y) / y_span * (height - 1)).astype(int), 0, height - 1)
    counts = np.zeros((height, width), dtype=int)
    np.add.at(counts, (rows, cols), 1)

    shades = " .:+#"
    peak = counts.max() or 1
    grid = np.full((height, width), " ", dtype="<U1")
    nonzero = counts > 0
    levels = np.clip(
        (np.log1p(counts) / np.log1p(peak) * (len(shades) - 1)).astype(int),
        1,
        len(shades) - 1,
    )
    grid[nonzero] = np.array(list(shades))[levels[nonzero]]

    if mark_outliers:
        for idx in outlier_rows(coords[:, :2]):
            grid[rows[idx], cols[idx]] = "@"

    lines = ["".join(row) for row in grid]
    header = (
        f"x: [{x_min:.3g}, {x_max:.3g}] (PC1)   "
        f"y: [{y_min:.3g}, {y_max:.3g}] (PC2)   n={coords.shape[0]}"
    )
    return "\n".join([header, "+" + "-" * width + "+"]
                     + ["|" + line + "|" for line in lines]
                     + ["+" + "-" * width + "+"])


def ascii_histogram(
    values: np.ndarray,
    bins: int = 20,
    width: int = 50,
    log_bins: bool = False,
    title: str = "",
) -> str:
    """Render a histogram of ``values`` as ASCII bars.

    With ``log_bins=True``, bin edges are logarithmic over the positive
    values — the natural view of the Fig. 8 error distribution, whose
    mass spans several orders of magnitude.
    """
    data = np.asarray(values, dtype=np.float64).ravel()
    if data.size == 0:
        raise ConfigurationError("histogram needs at least one value")
    if bins < 1 or width < 10:
        raise ConfigurationError("need bins >= 1 and width >= 10")
    if log_bins:
        positive = data[data > 0]
        if positive.size == 0:
            raise ConfigurationError("log_bins requires positive values")
        lo, hi = positive.min(), positive.max()
        if lo == hi:
            hi = lo * 10
        edges = np.logspace(np.log10(lo), np.log10(hi), bins + 1)
        counts, edges = np.histogram(positive, bins=edges)
    else:
        counts, edges = np.histogram(data, bins=bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(
            f"[{edges[i]:>10.3g}, {edges[i + 1]:>10.3g})  {bar} {count}"
        )
    return "\n".join(lines)
