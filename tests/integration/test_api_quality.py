"""Meta-tests on API quality: documentation and roundtrip fuzzing."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core import CompressedMatrix, SVDDCompressor
from repro.exceptions import BudgetError


def _iter_modules():
    for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
        if module_info.name == "repro.__main__":
            continue  # importing it would run the CLI
        yield importlib.import_module(module_info.name)


def _walk_public_callables():
    """Yield every public function/class/method in the repro package."""
    for module in _iter_modules():
        module_info_name = module.__name__
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != module_info_name:
                continue  # re-export; documented at its home
            if inspect.isfunction(obj) or inspect.isclass(obj):
                yield f"{module_info_name}.{name}", obj
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_"):
                            continue
                        if inspect.isfunction(meth):
                            yield f"{module_info_name}.{name}.{meth_name}", meth


class TestDocumentation:
    def test_every_public_item_has_a_docstring(self):
        """Deliverable (e): doc comments on every public item."""
        missing = [
            qualname
            for qualname, obj in _walk_public_callables()
            if not (inspect.getdoc(obj) or "").strip()
        ]
        assert missing == [], f"undocumented public items: {missing}"

    def test_every_module_has_a_docstring(self):
        missing = [
            module.__name__
            for module in _iter_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert missing == [], f"undocumented modules: {missing}"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    rows=st.integers(20, 80),
    cols=st.integers(8, 30),
    budget=st.floats(0.1, 0.6),
    precision=st.sampled_from([4, 8]),
)
def test_property_persist_roundtrip(
    tmp_path_factory, seed, rows, cols, budget, precision
):
    """Any fitted model survives save/open with cell-level agreement."""
    rng = np.random.default_rng(seed)
    data = rng.random((rows, cols)) * 10
    try:
        model = SVDDCompressor(budget_fraction=budget).fit(data)
    except BudgetError:
        return
    directory = tmp_path_factory.mktemp("rt") / "model"
    CompressedMatrix.save(model, directory, bytes_per_value=precision).close()
    store = CompressedMatrix.open(directory)
    try:
        tolerance = 1e-9 if precision == 8 else 1e-4 * max(1.0, np.abs(data).max())
        probes = rng.integers(0, [rows, cols], size=(10, 2))
        for row, col in probes:
            assert store.cell(int(row), int(col)) == pytest.approx(
                model.reconstruct_cell(int(row), int(col)), abs=tolerance
            )
    finally:
        store.close()
