"""Tests for the SVD/SVDD method adapters and the common interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVDCompressor, SVDDCompressor
from repro.exceptions import ShapeError
from repro.methods import SVDDMethod, SVDMethod, standard_methods
from repro.metrics import rmspe


class TestAdapters:
    def test_svd_adapter_matches_core(self, phone_small):
        via_method = SVDMethod().fit(phone_small, 0.10)
        via_core = SVDCompressor(budget_fraction=0.10).fit(phone_small)
        assert np.allclose(via_method.reconstruct(), via_core.reconstruct())

    def test_svdd_adapter_matches_core(self, phone_small):
        via_method = SVDDMethod().fit(phone_small, 0.10)
        via_core = SVDDCompressor(budget_fraction=0.10).fit(phone_small)
        assert np.allclose(via_method.reconstruct(), via_core.reconstruct())

    def test_adapter_space_accounting(self, phone_small):
        model = SVDDMethod().fit(phone_small, 0.10)
        assert model.space_fraction() <= 0.10 + 1e-12

    def test_names(self):
        assert SVDMethod().name == "svd"
        assert SVDDMethod().name == "delta"

    def test_validation(self):
        with pytest.raises(ShapeError):
            SVDMethod().fit(np.ones(5), 0.1)
        with pytest.raises(ShapeError):
            SVDMethod().fit(np.ones((3, 3)), 0.0)


class TestStandardMethods:
    def test_four_competitors_in_paper_order(self):
        assert [m.name for m in standard_methods()] == ["hc", "dct", "svd", "delta"]

    def test_all_fit_and_reconstruct(self, stocks_small):
        for method in standard_methods():
            model = method.fit(stocks_small, 0.15)
            assert model.reconstruct().shape == stocks_small.shape
            assert model.space_fraction() <= 0.15 + 1e-12

    def test_svdd_never_worse_than_svd(self, stocks_small):
        """SVDD dominates plain SVD at the same budget (Fig. 6)."""
        for budget in (0.05, 0.10, 0.20):
            svd_err = rmspe(
                stocks_small, SVDMethod().fit(stocks_small, budget).reconstruct()
            )
            svdd_err = rmspe(
                stocks_small, SVDDMethod().fit(stocks_small, budget).reconstruct()
            )
            assert svdd_err <= svd_err + 1e-9
