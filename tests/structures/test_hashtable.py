"""Tests for the open-addressing delta hash table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.structures import OpenAddressingTable


class TestBasics:
    def test_put_get(self):
        table = OpenAddressingTable()
        table.put(42, 3.14)
        assert table.get(42) == pytest.approx(3.14)

    def test_get_missing_returns_default(self):
        table = OpenAddressingTable()
        assert table.get(1) is None
        assert table.get(1, 0.0) == 0.0

    def test_overwrite_keeps_size(self):
        table = OpenAddressingTable()
        table.put(5, 1.0)
        table.put(5, 2.0)
        assert len(table) == 1
        assert table.get(5) == 2.0

    def test_contains(self):
        table = OpenAddressingTable()
        table.put(10, 1.0)
        assert 10 in table
        assert 11 not in table

    def test_rejects_negative_keys(self):
        with pytest.raises(ConfigurationError):
            OpenAddressingTable().put(-1, 0.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            OpenAddressingTable(initial_capacity=0)
        with pytest.raises(ConfigurationError):
            OpenAddressingTable(max_load_factor=0.99)

    def test_growth_preserves_contents(self):
        table = OpenAddressingTable(initial_capacity=4)
        for key in range(1000):
            table.put(key, float(key) * 0.5)
        assert len(table) == 1000
        assert table.capacity >= 1000
        assert all(table.get(k) == k * 0.5 for k in range(1000))

    def test_items_cover_all_pairs(self):
        table = OpenAddressingTable()
        expected = {k: float(k * k) for k in range(0, 50, 3)}
        for key, value in expected.items():
            table.put(key, value)
        assert dict(table.items()) == expected

    def test_probe_counter(self):
        table = OpenAddressingTable()
        table.put(1, 1.0)
        table.reset_probe_count()
        table.get(1)
        assert table.probe_count >= 1

    def test_size_bytes(self):
        assert OpenAddressingTable(initial_capacity=64).size_bytes() == 64 * 16


class TestRemoval:
    def test_remove_existing(self):
        table = OpenAddressingTable()
        table.put(7, 1.0)
        assert table.remove(7)
        assert 7 not in table
        assert len(table) == 0

    def test_remove_missing(self):
        assert not OpenAddressingTable().remove(3)

    def test_backward_shift_keeps_chain_reachable(self):
        """Deleting mid-chain must not orphan later colliding keys."""
        table = OpenAddressingTable(initial_capacity=8, max_load_factor=0.9)
        # Force collisions by inserting more keys than distinct home slots.
        keys = list(range(0, 60, 7))
        for key in keys:
            table.put(key, float(key))
        table.remove(keys[2])
        for key in keys:
            if key != keys[2]:
                assert table.get(key) == float(key), key

    def test_interleaved_put_remove(self):
        table = OpenAddressingTable(initial_capacity=4)
        reference: dict[int, float] = {}
        rng = np.random.default_rng(9)
        for _ in range(2000):
            key = int(rng.integers(0, 100))
            if rng.random() < 0.6:
                value = float(rng.random())
                table.put(key, value)
                reference[key] = value
            else:
                assert table.remove(key) == (key in reference)
                reference.pop(key, None)
        assert dict(table.items()) == reference


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "remove", "get"]),
            st.integers(0, 50),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        max_size=300,
    )
)
def test_property_behaves_like_dict(ops):
    table = OpenAddressingTable(initial_capacity=2)
    reference: dict[int, float] = {}
    for op, key, value in ops:
        if op == "put":
            table.put(key, value)
            reference[key] = value
        elif op == "remove":
            assert table.remove(key) == (key in reference)
            reference.pop(key, None)
        else:
            expected = reference.get(key)
            actual = table.get(key)
            if expected is None:
                assert actual is None
            else:
                assert actual == pytest.approx(expected, nan_ok=True)
    assert len(table) == len(reference)
    assert dict(table.items()) == pytest.approx(reference)
