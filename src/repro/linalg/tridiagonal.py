"""Householder tridiagonalization + implicit-shift QL eigensolver.

The paper points readers to Numerical Recipes for SVD code ('The latter
citation also gives C code', Section 3).  The classical dense
symmetric eigensolver from that source is the pair ``tred2`` /``tqli``:
reduce the matrix to tridiagonal form with Householder reflections,
then diagonalize the tridiagonal with implicitly shifted QL rotations.
This module is a from-scratch Python implementation of that pipeline —
O(n^3) like Jacobi per sweep but with a much smaller constant, sitting
between the pure-Python Jacobi solver and LAPACK in speed while
remaining fully self-contained.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.linalg.eigen import EigenResult, SymmetricEigensolver, _sorted_result
from repro.linalg.validate import require_symmetric


def householder_tridiagonalize(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reduce a symmetric matrix to tridiagonal form.

    Returns ``(diagonal, off_diagonal, q)`` with
    ``q.T @ matrix @ q == tridiag(diagonal, off_diagonal)`` and ``q``
    orthogonal.  ``off_diagonal[0]`` is unused (convention: it pads the
    sub-diagonal to length n).
    """
    a = require_symmetric(matrix).copy()
    n = a.shape[0]
    q = np.eye(n)
    off = np.zeros(n)
    for i in range(n - 1, 1, -1):
        # Zero out row i left of the sub-diagonal with a reflector.
        segment = a[i, :i]
        scale = np.abs(segment).sum()
        if scale == 0.0:
            off[i] = a[i, i - 1]
            continue
        v = segment / scale
        sigma = float(v @ v)
        alpha = np.sqrt(sigma)
        if v[i - 1] > 0:
            alpha = -alpha
        off[i] = scale * alpha
        sigma -= v[i - 1] * alpha
        v[i - 1] -= alpha
        # Apply the reflector H = I - v v^t / sigma from both sides.
        w = a[:i, :i] @ v / sigma
        k = float(v @ w) / (2.0 * sigma)
        w -= k * v
        a[:i, :i] -= np.outer(v, w) + np.outer(w, v)
        # Accumulate the transform.
        qv = q[:, :i] @ v
        q[:, :i] -= np.outer(qv, v) / sigma
    if n > 1:
        off[1] = a[1, 0]
    diag = a.diagonal().copy()
    return diag, off, q


def ql_implicit_shift(
    diagonal: np.ndarray,
    off_diagonal: np.ndarray,
    q: np.ndarray,
    max_iterations: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """Diagonalize a symmetric tridiagonal matrix (the ``tqli`` routine).

    Args:
        diagonal: main diagonal (modified in place to eigenvalues).
        off_diagonal: sub-diagonal padded to length n (entry 0 unused).
        q: orthogonal accumulator (columns become eigenvectors).
        max_iterations: per-eigenvalue rotation-sweep cap.
    """
    d = np.asarray(diagonal, dtype=np.float64).copy()
    e = np.asarray(off_diagonal, dtype=np.float64).copy()
    n = d.shape[0]
    vectors = q.copy()
    e = np.roll(e, -1)  # shift so e[i] couples d[i] and d[i+1]
    e[-1] = 0.0
    for l in range(n):
        for iteration in range(max_iterations + 1):
            # Find a negligible off-diagonal to split the problem.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= np.finfo(float).eps * dd:
                    break
                m += 1
            if m == l:
                break
            if iteration == max_iterations:
                raise ConvergenceError(
                    f"QL iteration failed to converge for eigenvalue {l}"
                )
            # Implicit shift from the 2x2 trailing block.
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e[l] / (g + (r if g >= 0 else -r))
            s, c = 1.0, 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b = c * e[i]
                r = np.hypot(f, g)
                e[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b
                p = s * r
                d[i + 1] = g + p
                g = c * r - b
                # Rotate the eigenvector columns.
                col_next = vectors[:, i + 1].copy()
                col_i = vectors[:, i].copy()
                vectors[:, i + 1] = s * col_i + c * col_next
                vectors[:, i] = c * col_i - s * col_next
            else:
                d[l] -= p
                e[l] = g
                e[m] = 0.0
                continue
            continue
    return d, vectors


class TridiagonalEigensolver(SymmetricEigensolver):
    """Householder + implicit-QL dense symmetric eigensolver.

    The Numerical Recipes ``tred2``/``tqli`` pipeline the paper's era
    relied on, implemented from scratch.  Orders of magnitude faster
    than cyclic Jacobi in Python while remaining dependency-free;
    validated against LAPACK in the test suite.

    Args:
        max_iterations: QL sweep cap per eigenvalue.
    """

    def __init__(self, max_iterations: int = 50) -> None:
        if max_iterations < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.max_iterations = max_iterations

    def decompose(self, matrix: np.ndarray) -> EigenResult:
        sym = require_symmetric(matrix)
        if sym.shape[0] == 1:
            return EigenResult(sym.diagonal().copy(), np.eye(1))
        diag, off, q = householder_tridiagonalize(sym)
        values, vectors = ql_implicit_shift(
            diag, off, q, max_iterations=self.max_iterations
        )
        return _sorted_result(values, vectors)
