"""The paper's primary contribution: SVD and SVDD compression.

- :class:`SVDCompressor` — two-pass out-of-core truncated SVD
  (Section 4.1);
- :class:`SVDDCompressor` — three-pass SVD-with-Deltas (Section 4.2,
  Figure 5), the proposed method;
- :class:`SVDModel` / :class:`SVDDModel` — the fitted in-memory models
  with O(k) cell reconstruction (Eq. 12);
- :class:`CompressedMatrix` — the persistent, disk-resident form with
  the paper's one-disk-access physical layout;
- :mod:`repro.core.space` — the Eq. 9 space accounting shared by all
  methods;
- :mod:`repro.core.update` — incremental maintenance of a persistent
  model: :func:`append_columns` (new days) and
  :func:`repro.core.update.append_rows` (new customers) fold data in
  without a rebuild.  The latter is reachable only via its module path
  because :mod:`repro.core.streaming` already exports an in-memory
  ``append_rows`` here.
"""

from repro.core.build import build_compressed, estimate_build_memory
from repro.core.delta_index import DeltaIndex
from repro.core.model import SVDDModel, SVDModel, cell_key
from repro.core.robust import RobustSVDCompressor, RobustSVDDCompressor
from repro.core.streaming import append_rows, project_rows, subspace_residual
from repro.core.update import AppendResult, append_columns, load_update_state
from repro.core.updates import BatchUpdater
from repro.core.verify import VerificationReport, verify_model
from repro.core.space import (
    BYTES_PER_VALUE,
    DELTA_RECORD_BYTES,
    delta_budget,
    max_k_for_budget,
    svd_space_bytes,
    svd_space_fraction,
    svdd_space_bytes,
    uncompressed_bytes,
)
from repro.core.store import CompressedMatrix
from repro.core.svd import (
    SVDCompressor,
    compute_gram,
    compute_u,
    compute_u_to_store,
    spectrum_from_gram,
)
from repro.core.svdd import NaiveSVDDCompressor, SVDDCompressor

__all__ = [
    "AppendResult",
    "BYTES_PER_VALUE",
    "BatchUpdater",
    "RobustSVDCompressor",
    "RobustSVDDCompressor",
    "CompressedMatrix",
    "DELTA_RECORD_BYTES",
    "DeltaIndex",
    "SVDCompressor",
    "NaiveSVDDCompressor",
    "SVDDCompressor",
    "SVDDModel",
    "SVDModel",
    "VerificationReport",
    "append_columns",
    "append_rows",
    "build_compressed",
    "estimate_build_memory",
    "load_update_state",
    "verify_model",
    "cell_key",
    "project_rows",
    "subspace_residual",
    "compute_gram",
    "compute_u",
    "compute_u_to_store",
    "delta_budget",
    "max_k_for_budget",
    "spectrum_from_gram",
    "svd_space_bytes",
    "svd_space_fraction",
    "svdd_space_bytes",
    "uncompressed_bytes",
]
