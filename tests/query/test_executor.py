"""Tests for the concurrent query executor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_compressed
from repro.exceptions import QueryError
from repro.query import (
    AggregateQuery,
    CellQuery,
    QueryEngine,
    QueryExecutor,
    Selection,
)


@pytest.fixture(scope="module")
def data(rng):
    u = rng.standard_normal((120, 4))
    v = rng.standard_normal((4, 40))
    return u @ v


@pytest.fixture(scope="module")
def model(data, tmp_path_factory):
    store = build_compressed(data, tmp_path_factory.mktemp("exec") / "model")
    yield store
    store.close()


def _mixed_queries(shape, count=24, seed=7):
    rng = np.random.default_rng(seed)
    rows, cols = shape
    queries = []
    for index in range(count):
        if index % 3 == 0:
            r0, r1 = sorted(rng.integers(0, rows, size=2).tolist())
            c0, c1 = sorted(rng.integers(0, cols, size=2).tolist())
            function = ("sum", "avg", "count", "min")[index % 4]
            queries.append(
                AggregateQuery(
                    function,
                    Selection(rows=range(r0, r1 + 1), cols=range(c0, c1 + 1)),
                )
            )
        elif index % 3 == 1:
            queries.append(
                CellQuery(int(rng.integers(0, rows)), int(rng.integers(0, cols)))
            )
        else:
            queries.append((int(rng.integers(0, rows)), int(rng.integers(0, cols))))
    return queries


class TestDispatch:
    def test_submit_cell(self, model):
        expected = QueryEngine(model).cell(CellQuery(3, 5)).value
        with QueryExecutor(model, max_workers=2) as pool:
            result = pool.submit(CellQuery(3, 5)).result()
        assert result.value == expected

    def test_tuple_and_text_forms(self, model):
        with QueryExecutor(model, max_workers=2) as pool:
            from_tuple = pool.submit((2, 4)).result()
            from_text = pool.submit("cell(2, 4)").result()
        assert from_tuple.value == pytest.approx(from_text.value)

    def test_aggregate_text(self, model):
        from repro.query import parse_query

        expected = QueryEngine(model).aggregate(
            parse_query("sum() rows 0:50 cols 0:20")
        ).value
        with QueryExecutor(model, max_workers=2) as pool:
            result = pool.submit("sum() rows 0:50 cols 0:20").result()
        assert result.value == expected

    def test_bad_form_rejected(self, model):
        with QueryExecutor(model, max_workers=1) as pool:
            with pytest.raises(QueryError):
                pool.submit({"not": "a query"})

    def test_bad_worker_count_rejected(self, model):
        with pytest.raises(ValueError):
            QueryExecutor(model, max_workers=0)

    def test_submit_after_shutdown_rejected(self, model):
        pool = QueryExecutor(model, max_workers=1)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(CellQuery(0, 0))


class TestParallelAgreement:
    """Concurrent answers must be identical to single-threaded ones."""

    def test_map_matches_sequential_engine(self, model):
        queries = _mixed_queries(model.shape)
        engine = QueryEngine(model)
        expected = []
        for query in queries:
            if isinstance(query, AggregateQuery):
                expected.append(engine.aggregate(query).value)
            else:
                expected.append(engine.cell(query if isinstance(query, CellQuery) else CellQuery(*query)).value)
        with QueryExecutor(model, max_workers=4) as pool:
            results = pool.map(queries)
        assert [r.value for r in results] == expected

    def test_map_preserves_order(self, model):
        queries = [(i % model.shape[0], i % model.shape[1]) for i in range(16)]
        single = QueryExecutor(model, max_workers=1)
        multi = QueryExecutor(model, max_workers=4)
        try:
            assert [r.value for r in multi.map(queries)] == [
                r.value for r in single.map(queries)
            ]
        finally:
            single.shutdown()
            multi.shutdown()

    def test_failing_query_surfaces_without_poisoning_pool(self, model):
        with QueryExecutor(model, max_workers=2) as pool:
            bad = pool.submit(CellQuery(10**9, 0))
            good = pool.submit(CellQuery(0, 0))
            with pytest.raises(QueryError):
                bad.result()
            assert good.result().cells_touched == 1


class TestBatchReport:
    def test_run_batch_accounting(self, model):
        queries = _mixed_queries(model.shape, count=12)
        with QueryExecutor(model, max_workers=2) as pool:
            report = pool.run_batch(queries)
        assert report.queries == 12
        assert len(report.results) == 12
        assert report.workers == 2
        assert report.wall_s > 0
        assert report.throughput_qps > 0

    def test_profiles_preserved_per_query(self, model, enabled_registry):
        with QueryExecutor(model, max_workers=4) as pool:
            results = pool.map(_mixed_queries(model.shape, count=9))
        assert all(r.profile is not None for r in results)
        paths = {r.profile.path for r in results}
        assert paths <= {"cell", "factor", "stream"}

    def test_concurrency_gauge_settles_to_zero(self, model, enabled_registry):
        with QueryExecutor(model, max_workers=4) as pool:
            pool.map(_mixed_queries(model.shape, count=16))
        snapshot = enabled_registry.snapshot()
        assert snapshot["gauges"]["executor.concurrency"] == 0.0
        assert snapshot["gauges"]["executor.workers"] == 4.0
        assert snapshot["counters"]["executor.queries"] == 16


class TestWarehouseIntegration:
    def test_warehouse_executor_owns_model(self, data, tmp_path):
        from repro.warehouse import Warehouse

        warehouse = Warehouse(tmp_path)
        warehouse.ingest("sales", data, keep_raw=False, verify=False)
        with warehouse.executor("sales", max_workers=2) as pool:
            result = pool.submit("sum() rows 0:10 cols 0:10").result()
            backend = pool._backend
        assert result.cells_touched == 100
        # Ownership: leaving the with-block closed the model's page file.
        import os

        with pytest.raises(OSError):
            os.fstat(backend._u_store._pager._fd)


class _SlowBackend:
    """Row backend whose reads sleep, for draining/lifecycle races."""

    def __init__(self, data, delay=0.02):
        self._data = data
        self.shape = data.shape
        self.delay = delay
        self.closed = False
        self.reads_after_close = 0

    def row(self, index):
        import time

        time.sleep(self.delay)
        if self.closed:
            self.reads_after_close += 1
        return self._data[index]

    def close(self):
        self.closed = True


class TestLifecycleRaces:
    def test_shutdown_wait_false_defers_backend_close(self, rng):
        """shutdown(wait=False) must not close backends under in-flight
        queries: the close happens only after the pool drains."""
        import time

        backend = _SlowBackend(rng.standard_normal((30, 10)), delay=0.05)
        pool = QueryExecutor(backend, max_workers=2, close_backend=True)
        futures = [pool.submit(CellQuery(i, 0)) for i in range(6)]
        start = time.perf_counter()
        pool.shutdown(wait=False)
        # Returns promptly, well before the ~150ms of queued sleeps.
        assert time.perf_counter() - start < 0.1
        # Every in-flight/queued query completes against a live backend.
        values = [f.result().value for f in futures]
        assert len(values) == 6
        pool._closer.join(timeout=10)
        assert backend.closed
        assert backend.reads_after_close == 0

    def test_shutdown_wait_true_closes_after_drain(self, rng):
        backend = _SlowBackend(rng.standard_normal((30, 10)), delay=0.02)
        pool = QueryExecutor(backend, max_workers=2, close_backend=True)
        futures = [pool.submit(CellQuery(i, 0)) for i in range(4)]
        pool.shutdown(wait=True)
        assert backend.closed
        assert backend.reads_after_close == 0
        assert all(f.done() for f in futures)

    def test_submit_vs_shutdown_race(self, rng):
        """A submit that wins the race gets a future that completes; a
        submit that loses gets RuntimeError — never a task scheduled
        onto a closed pool or answered by a closed backend."""
        import threading

        backend = _SlowBackend(rng.standard_normal((30, 10)), delay=0.001)
        pool = QueryExecutor(backend, max_workers=2, close_backend=True)
        futures, rejected = [], []
        stop = threading.Event()

        def submitter():
            while not stop.is_set():
                try:
                    futures.append(pool.submit(CellQuery(0, 0)))
                except RuntimeError:
                    rejected.append(1)
                    return

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.05)
        pool.shutdown(wait=False)
        stop.set()
        for thread in threads:
            thread.join()
        pool._closer.join(timeout=10)
        # Every accepted future completed against a live backend.
        for future in futures:
            assert future.result().cells_touched == 1
        assert backend.reads_after_close == 0
        assert backend.closed

    def test_refresh_then_shutdown_closes_retired_backends(self, rng):
        """Backends replaced by refresh() are retired, then closed at
        shutdown — including with the deferred wait=False path."""
        data = rng.standard_normal((20, 8))
        first = _SlowBackend(data, delay=0.0)
        second = _SlowBackend(data, delay=0.0)
        pool = QueryExecutor(first, max_workers=2, close_backend=True)
        pool.refresh(second)
        assert not first.closed  # retired, not closed: reads may be live
        pool.shutdown(wait=False)
        pool._closer.join(timeout=10)
        assert first.closed
        assert second.closed

    def test_unowned_initial_backend_stays_open(self, rng):
        data = rng.standard_normal((20, 8))
        caller_owned = _SlowBackend(data, delay=0.0)
        replacement = _SlowBackend(data, delay=0.0)
        pool = QueryExecutor(caller_owned, max_workers=1)
        pool.refresh(replacement)
        pool.shutdown()
        assert not caller_owned.closed  # ours to close, not the pool's
        assert replacement.closed  # executor-opened: pool owns it


class TestRefresh:
    def _appendable_model(self, tmp_path, rng):
        data = rng.standard_normal((80, 3)) @ rng.standard_normal((3, 30))
        directory = tmp_path / "model"
        build_compressed(data, directory).close()
        return directory, data

    def test_refresh_picks_up_appended_columns(self, tmp_path, rng):
        from repro.core import CompressedMatrix
        from repro.core.update import append_columns

        directory, data = self._appendable_model(tmp_path, rng)
        backend = CompressedMatrix.open(directory)
        with QueryExecutor(backend, max_workers=2, close_backend=True) as pool:
            assert pool.engine.shape == (80, 30)
            append_columns(directory, data[:, :4] * 1.5)
            # Not refreshed yet: still the pre-append snapshot.
            assert pool.engine.shape == (80, 30)
            pool.refresh()
            assert pool.engine.shape == (80, 34)
            result = pool.submit(CellQuery(5, 33)).result()
            assert np.isfinite(result.value)

    def test_refresh_with_explicit_backend(self, tmp_path, rng):
        from repro.core import CompressedMatrix

        directory, _data = self._appendable_model(tmp_path, rng)
        backend = CompressedMatrix.open(directory)
        replacement = CompressedMatrix.open(directory)
        with QueryExecutor(backend, max_workers=2, close_backend=True) as pool:
            pool.refresh(replacement)
            assert pool._backend is replacement

    def test_refresh_requires_reopenable_backend(self, rng):
        data = rng.standard_normal((10, 8))
        with QueryExecutor(data, max_workers=1) as pool:
            with pytest.raises(QueryError, match="reopen"):
                pool.refresh()

    def test_engine_refresh_swaps_snapshot(self, model):
        """QueryEngine.refresh changes answers only for new queries."""
        import numpy as np

        engine = QueryEngine(model)
        before = engine.cell(CellQuery(2, 3)).value
        other = np.zeros((5, 5))
        engine.refresh(other)
        assert engine.shape == (5, 5)
        assert engine.cell(CellQuery(2, 3)).value == 0.0
        engine.refresh(model)
        assert engine.cell(CellQuery(2, 3)).value == before
