"""Qualitative claims from the paper's evaluation, checked on the
synthetic stand-in datasets.  Absolute numbers differ from the paper
(our data is synthetic); the *shapes* — who wins, and by what kind of
margin — must hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SVDCompressor, SVDDCompressor
from repro.methods import (
    DCTMethod,
    HierarchicalClusteringMethod,
    LosslessZlibMethod,
    SVDDMethod,
    SVDMethod,
)
from repro.metrics import rmspe, worst_case_error


class TestFig6Shape:
    """Figure 6: reconstruction error vs space for the four methods."""

    def test_svdd_best_on_phone(self, phone_medium):
        budget = 0.10
        errors = {
            method.name: rmspe(
                phone_medium, method.fit(phone_medium, budget).reconstruct()
            )
            for method in [SVDDMethod(), SVDMethod(), DCTMethod()]
        }
        assert errors["delta"] <= errors["svd"]
        assert errors["svd"] < errors["dct"]

    def test_dct_worst_on_phone(self, phone_small):
        """Phone data has spikes and weekday structure DCT cannot exploit."""
        budget = 0.10
        dct_err = rmspe(phone_small, DCTMethod().fit(phone_small, budget).reconstruct())
        hc_err = rmspe(
            phone_small,
            HierarchicalClusteringMethod().fit(phone_small, budget).reconstruct(),
        )
        svd_err = rmspe(phone_small, SVDMethod().fit(phone_small, budget).reconstruct())
        assert dct_err > svd_err
        assert dct_err > hc_err

    def test_dct_competitive_on_stocks(self, stocks_small):
        """Stock prices are random walks: DCT does far better there."""
        budget = 0.10
        dct_err = rmspe(
            stocks_small, DCTMethod().fit(stocks_small, budget).reconstruct()
        )
        svd_err = rmspe(
            stocks_small, SVDMethod().fit(stocks_small, budget).reconstruct()
        )
        assert dct_err < 3 * svd_err  # same ballpark, unlike the phone case

    def test_svd_beats_clustering_on_stocks(self, stocks_small):
        """Section 5.1 / Appendix A: no natural clusters in stocks."""
        budget = 0.10
        svd_err = rmspe(
            stocks_small, SVDMethod().fit(stocks_small, budget).reconstruct()
        )
        hc_err = rmspe(
            stocks_small,
            HierarchicalClusteringMethod().fit(stocks_small, budget).reconstruct(),
        )
        assert svd_err < hc_err

    def test_error_decreases_with_space_for_all(self, phone_small):
        for method in [SVDDMethod(), SVDMethod(), DCTMethod()]:
            errors = [
                rmspe(phone_small, method.fit(phone_small, s).reconstruct())
                for s in (0.05, 0.10, 0.20)
            ]
            assert errors == sorted(errors, reverse=True), method.name


class TestTable3Shape:
    """Worst-case error: SVD unbounded-ish, SVDD tightly bounded."""

    @pytest.mark.parametrize("budget", [0.10, 0.20])
    def test_svdd_worst_case_far_below_svd(self, phone_medium, budget):
        svd = SVDCompressor(budget_fraction=budget).fit(phone_medium)
        svdd = SVDDCompressor(budget_fraction=budget).fit(phone_medium)
        _, svd_norm = worst_case_error(phone_medium, svd.reconstruct())
        _, svdd_norm = worst_case_error(phone_medium, svdd.reconstruct())
        assert svdd_norm < svd_norm / 3

    def test_svdd_worst_case_small_in_absolute_terms(self, phone_medium):
        """Paper: 'within 10%' normalized at 10% storage."""
        svdd = SVDDCompressor(budget_fraction=0.10).fit(phone_medium)
        _, normalized = worst_case_error(phone_medium, svdd.reconstruct())
        assert normalized < 0.60  # vs hundreds-of-percent for plain SVD

    def test_worst_case_improves_with_space(self, phone_small):
        norms = []
        for budget in (0.05, 0.15, 0.25):
            svdd = SVDDCompressor(budget_fraction=budget).fit(phone_small)
            norms.append(worst_case_error(phone_small, svdd.reconstruct())[1])
        assert norms[-1] <= norms[0]


class TestFig8Shape:
    """Per-cell error distribution: steep initial drop."""

    def test_median_orders_below_max(self, phone_medium):
        from repro.metrics import error_distribution

        model = SVDCompressor(budget_fraction=0.10).fit(phone_medium)
        dist = error_distribution(phone_medium, model.reconstruct())
        median = dist[dist.size // 2]
        assert dist[0] / max(median, 1e-12) > 100

    def test_top_errors_concentrated(self, phone_medium):
        """A tiny fraction of cells carries most of the squared error."""
        from repro.metrics import error_distribution

        model = SVDCompressor(budget_fraction=0.10).fit(phone_medium)
        dist = error_distribution(phone_medium, model.reconstruct())
        total_sq = float((dist**2).sum())
        top_one_percent = float((dist[: dist.size // 100] ** 2).sum())
        assert top_one_percent / total_sq > 0.5


class TestScaleUpShape:
    """Figure 10 / Table 4: RMSPE flat in N; SVD worst-case grows, SVDD flat."""

    def test_rmspe_roughly_constant_in_n(self):
        from repro.data import phone_matrix

        errors = []
        for n in (300, 600, 1200):
            data = phone_matrix(n)
            model = SVDDCompressor(budget_fraction=0.10).fit(data)
            errors.append(rmspe(data, model.reconstruct()))
        assert max(errors) / min(errors) < 2.0

    def test_svdd_worst_case_flat_while_svd_grows(self):
        from repro.data import phone_matrix

        svd_norms, svdd_norms = [], []
        for n in (300, 1200):
            data = phone_matrix(n)
            svd = SVDCompressor(budget_fraction=0.10).fit(data)
            svdd = SVDDCompressor(budget_fraction=0.10).fit(data)
            svd_norms.append(worst_case_error(data, svd.reconstruct())[1])
            svdd_norms.append(worst_case_error(data, svdd.reconstruct())[1])
        # SVDD stays bounded while SVD's worst case is much larger at scale.
        assert svdd_norms[-1] < svd_norms[-1] / 3


class TestGzipReference:
    def test_lossless_cannot_reach_svdd_ratios(self, phone_medium):
        """Section 5.1's reference point: gzip is far from 40:1 on this data
        while SVDD reaches 10:1 with small error."""
        gzip_fraction = LosslessZlibMethod().fit(phone_medium).space_fraction()
        svdd = SVDDCompressor(budget_fraction=0.10).fit(phone_medium)
        assert svdd.space_fraction() < gzip_fraction
