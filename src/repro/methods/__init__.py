"""The competing compression methods of the paper's survey (Section 2)
and evaluation (Section 5.1), all behind one budget-parameterized
interface:

- ``svd`` / ``delta`` — the core methods, adapted
  (:class:`SVDMethod`, :class:`SVDDMethod`);
- ``dct`` / ``dft`` / ``dwt`` — per-row spectral truncation
  (:class:`DCTMethod`, :class:`DFTMethod`, :class:`HaarWaveletMethod`);
- ``hc`` / ``kmeans`` — vector quantization by hierarchical or k-means
  clustering (:class:`HierarchicalClusteringMethod`,
  :class:`KMeansMethod`);
- ``gzip`` — the lossless reference point
  (:class:`LosslessZlibMethod`; ``decimals=2`` gives the fixed-point
  variant matching the paper's ~25%);
- ``paa`` / ``adct`` / ``rp`` — extensions bracketing the survey:
  piecewise aggregate approximation, largest-coefficient DCT, and the
  random-axis ablation (:class:`PAAMethod`, :class:`AdaptiveDCTMethod`,
  :class:`RandomProjectionMethod`);
- ``std+<inner>`` — per-column standardization wrapper for
  heterogeneous vectors (:class:`StandardizedMethod`).
"""

from repro.methods.adaptive import AdaptiveDCTMethod, RandomProjectionMethod
from repro.methods.base import CompressionMethod, FittedModel
from repro.methods.clustering import (
    HierarchicalClusteringMethod,
    KMeansMethod,
    VQModel,
    clusters_for_budget,
    complete_linkage_merges,
    cut_merges,
)
from repro.methods.lossless import LosslessModel, LosslessZlibMethod
from repro.methods.spectral import (
    DCTMethod,
    DFTMethod,
    HaarWaveletMethod,
    dct_matrix,
    haar_inverse,
    haar_transform,
)
from repro.methods.paa import PAAMethod, PAAModel
from repro.methods.standardize import StandardizedMethod, StandardizedModel
from repro.methods.svd_adapter import SVDDMethod, SVDMethod


def standard_methods() -> list[CompressionMethod]:
    """The four competitors of Figure 6, in the paper's plotting order."""
    return [
        HierarchicalClusteringMethod(),
        DCTMethod(),
        SVDMethod(),
        SVDDMethod(),
    ]


__all__ = [
    "AdaptiveDCTMethod",
    "CompressionMethod",
    "PAAMethod",
    "PAAModel",
    "RandomProjectionMethod",
    "StandardizedMethod",
    "StandardizedModel",
    "DCTMethod",
    "DFTMethod",
    "FittedModel",
    "HaarWaveletMethod",
    "HierarchicalClusteringMethod",
    "KMeansMethod",
    "LosslessModel",
    "LosslessZlibMethod",
    "SVDDMethod",
    "SVDMethod",
    "VQModel",
    "clusters_for_budget",
    "complete_linkage_merges",
    "cut_merges",
    "dct_matrix",
    "haar_inverse",
    "haar_transform",
    "standard_methods",
]
