"""Tests for the spectral compression methods (DCT, DFT, Haar DWT)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.fft
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.methods import (
    DCTMethod,
    DFTMethod,
    HaarWaveletMethod,
    dct_matrix,
    haar_inverse,
    haar_transform,
)


class TestDCTMatrix:
    def test_orthonormal(self):
        mat = dct_matrix(16)
        assert np.allclose(mat @ mat.T, np.eye(16), atol=1e-12)

    def test_matches_scipy(self, rng):
        x = rng.standard_normal(32)
        ours = dct_matrix(32) @ x
        ref = scipy.fft.dct(x, type=2, norm="ortho")
        assert np.allclose(ours, ref, atol=1e-10)

    def test_size_one(self):
        assert dct_matrix(1) == pytest.approx(np.array([[1.0]]))

    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            dct_matrix(0)


class TestHaar:
    def test_roundtrip(self, rng):
        x = rng.standard_normal(64)
        assert np.allclose(haar_inverse(haar_transform(x)), x, atol=1e-12)

    def test_energy_preserved(self, rng):
        """Orthonormal transform: Parseval holds."""
        x = rng.standard_normal(128)
        coeffs = haar_transform(x)
        assert np.sum(coeffs**2) == pytest.approx(np.sum(x**2))

    def test_constant_signal_is_single_coefficient(self):
        x = np.full(16, 3.0)
        coeffs = haar_transform(x)
        assert coeffs[0] == pytest.approx(3.0 * 4.0)  # sqrt(16) * mean
        assert np.allclose(coeffs[1:], 0.0, atol=1e-12)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            haar_transform(np.ones(12))
        with pytest.raises(ConfigurationError):
            haar_inverse(np.ones(12))

    def test_length_one(self):
        assert haar_transform(np.array([5.0]))[0] == 5.0


@pytest.mark.parametrize(
    "method_cls", [DCTMethod, DFTMethod, HaarWaveletMethod], ids=["dct", "dft", "dwt"]
)
class TestCommonBehaviour:
    def test_space_within_budget(self, method_cls, phone_small):
        model = method_cls().fit(phone_small, 0.10)
        assert model.space_fraction() <= 0.10 + 1e-12

    def test_error_decreases_with_budget(self, method_cls, stocks_small):
        from repro.metrics import rmspe

        errors = [
            rmspe(stocks_small, method_cls().fit(stocks_small, s).reconstruct())
            for s in (0.05, 0.20, 0.50)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_cell_matches_row(self, method_cls, stocks_small):
        model = method_cls().fit(stocks_small, 0.2)
        assert model.reconstruct_cell(3, 17) == pytest.approx(
            model.reconstruct_row(3)[17]
        )

    def test_full_matches_rows(self, method_cls, stocks_small):
        model = method_cls().fit(stocks_small, 0.2)
        full = model.reconstruct()
        assert np.allclose(full[5], model.reconstruct_row(5))

    def test_bounds_checked(self, method_cls, stocks_small):
        from repro.exceptions import QueryError

        model = method_cls().fit(stocks_small, 0.2)
        with pytest.raises(QueryError):
            model.reconstruct_cell(999, 0)


class TestDCTSpecifics:
    def test_full_budget_exact(self, rng):
        x = rng.standard_normal((10, 16))
        model = DCTMethod().fit(x, 1.0)
        assert np.allclose(model.reconstruct(), x, atol=1e-10)

    def test_smooth_data_compresses_well(self):
        """Low-frequency signals survive aggressive truncation."""
        t = np.linspace(0, 2 * np.pi, 64)
        x = np.vstack([np.sin(t + phase) for phase in np.linspace(0, 1, 20)])
        model = DCTMethod().fit(x, 0.10)
        from repro.metrics import rmspe

        assert rmspe(x, model.reconstruct()) < 0.10

    def test_coefficients_per_row(self, phone_small):
        model = DCTMethod().fit(phone_small, 0.10)
        assert model.coefficients_per_row == int(0.10 * phone_small.shape[1])


class TestDFTSpecifics:
    def test_full_budget_exact(self, rng):
        x = rng.standard_normal((6, 20))
        model = DFTMethod().fit(x, 1.0)
        assert np.allclose(model.reconstruct(), x, atol=1e-10)

    def test_complex_coefficients_cost_double(self, phone_small):
        model = DFTMethod().fit(phone_small, 0.10)
        budget_numbers = int(0.10 * phone_small.shape[1])
        assert model.coefficients_per_row <= budget_numbers

    def test_pure_tone_compresses_perfectly(self):
        t = np.arange(64)
        x = np.vstack([np.cos(2 * np.pi * 2 * t / 64) for _ in range(5)])
        model = DFTMethod().fit(x, 0.10)
        assert np.allclose(model.reconstruct(), x, atol=1e-10)


class TestDWTSpecifics:
    def test_full_budget_exact_on_pow2(self, rng):
        x = rng.standard_normal((5, 32))
        model = HaarWaveletMethod().fit(x, 1.0)
        assert np.allclose(model.reconstruct(), x, atol=1e-10)

    def test_handles_non_pow2_width(self, rng):
        x = rng.standard_normal((5, 25))
        model = HaarWaveletMethod().fit(x, 0.5)
        assert model.reconstruct().shape == (5, 25)

    def test_piecewise_constant_compresses_well(self):
        """Haar's sweet spot: step functions."""
        x = np.zeros((10, 64))
        x[:, 32:] = 5.0
        model = HaarWaveletMethod().fit(x, 0.10)
        from repro.metrics import rmspe

        assert rmspe(x, model.reconstruct()) < 0.01


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), log_len=st.integers(1, 7))
def test_property_haar_roundtrip(seed, log_len):
    x = np.random.default_rng(seed).standard_normal(2**log_len)
    assert np.allclose(haar_inverse(haar_transform(x)), x, atol=1e-9)
