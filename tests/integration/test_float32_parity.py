"""End-to-end ``bytes_per_value=4`` parity: build, query, fsck, append.

The float32 storage mode must be a first-class citizen of the whole
lifecycle, not just of ``save()``: the streamed build writes float32
factors and 12-byte delta records, queries agree with the float64 model
to float32 noise, ``fsck`` verifies the manifest, and incremental
appends preserve the precision end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompressedMatrix, build_compressed
from repro.core.space import delta_record_bytes
from repro.core.update import append_columns, append_rows, load_update_state
from repro.data import phone_matrix
from repro.query import AggregateQuery, CellQuery, QueryEngine, Selection
from repro.storage.delta_file import DeltaFile
from repro.storage.integrity import verify_manifest


@pytest.fixture(scope="module")
def data():
    return phone_matrix(220)


@pytest.fixture(scope="module")
def models(data, tmp_path_factory):
    """The same 200 x 366 prefix built at b=8 and b=4."""
    root = tmp_path_factory.mktemp("parity")
    base = data[:200, :]
    build_compressed(base, root / "m64", 0.10, bytes_per_value=8).close()
    build_compressed(base, root / "m32", 0.10, bytes_per_value=4).close()
    return root / "m64", root / "m32"


class TestBuildParity:
    def test_both_models_stay_within_budget(self, models):
        """The honest 12-byte record accounting legitimately shifts the
        b=4 optimum (deltas are relatively pricier than at b=8, so k_opt
        may grow); what must hold is that each model fits its own
        b-sized budget."""
        m64, m32 = models
        with CompressedMatrix.open(m64) as full, CompressedMatrix.open(m32) as half:
            assert half.bytes_per_value == 4
            assert full.space_bytes() <= 0.10 * 200 * 366 * 8 + 1e-9
            assert half.space_bytes() <= 0.10 * 200 * 366 * 4 + 1e-9
            # Pricier records -> the optimizer never buys more deltas
            # per component than the b=8 model affords.
            assert half.cutoff >= full.cutoff

    def test_delta_records_are_12_bytes_on_disk(self, models):
        _m64, m32 = models
        with CompressedMatrix.open(m32) as half:
            count = half.num_deltas
        assert count > 0
        on_disk = (m32 / "deltas.bin").stat().st_size
        assert on_disk == DeltaFile.size_bytes(count, bytes_per_value=4)
        assert on_disk == DeltaFile.size_bytes(0, bytes_per_value=4) + count * (
            delta_record_bytes(4)
        )

    def test_factors_stored_as_float32(self, models):
        _m64, m32 = models
        assert np.load(m32 / "lambda.npy").dtype == np.float32
        assert np.load(m32 / "v.npy").dtype == np.float32


class TestQueryParity:
    def test_reconstruction_error_comparable_to_float64(self, data, models):
        """At the same budget fraction the b=4 model must reconstruct
        the data about as well as the b=8 one — quantization noise is
        invisible next to the truncation error."""
        from repro.metrics import rmspe

        m64, m32 = models
        base = data[:200, :]
        with CompressedMatrix.open(m64) as full, CompressedMatrix.open(m32) as half:
            err64 = rmspe(base, full.reconstruct_all())
            err32 = rmspe(base, half.reconstruct_all())
        assert err32 <= err64 * 1.5

    def test_aggregates_agree_between_precisions(self, models):
        """Aggregates average over many cells, so the two models (built
        at the same fraction) agree closely despite different k_opt."""
        m64, m32 = models
        with CompressedMatrix.open(m64) as full, CompressedMatrix.open(m32) as half:
            engine64, engine32 = QueryEngine(full), QueryEngine(half)
            for function in ("sum", "avg"):
                query = AggregateQuery(
                    function, Selection(rows=range(0, 60), cols=range(10, 40))
                )
                a = engine64.aggregate(query).value
                b = engine32.aggregate(query).value
                assert b == pytest.approx(a, rel=0.02)

    def test_cell_queries_are_finite_and_plausible(self, data, models):
        _m64, m32 = models
        rng = np.random.default_rng(11)
        scale = float(np.abs(data).max())
        with CompressedMatrix.open(m32) as half:
            engine = QueryEngine(half)
            for row, col in rng.integers(0, [200, 366], size=(25, 2)):
                value = engine.cell(CellQuery(int(row), int(col))).value
                assert np.isfinite(value)
                assert abs(value) <= scale * 2


class TestFsckParity:
    def test_manifest_verifies_clean(self, models):
        for directory in models:
            report = verify_manifest(directory, deep=True)
            assert report.ok, report.problems()


class TestAppendParity:
    def test_append_preserves_precision_end_to_end(self, data, models, tmp_path):
        import shutil

        _m64, m32 = models
        directory = tmp_path / "m32"
        shutil.copytree(m32, directory)

        append_columns(directory, data[:200, :7] * 1.01)
        append_rows(directory, np.hstack([data[200:, :], data[200:, :7] * 1.01]))

        state = load_update_state(directory)
        assert state["bytes_per_value"] == 4
        with CompressedMatrix.open(directory) as store:
            assert store.shape == (220, 373)
            assert store.bytes_per_value == 4
            assert store._u_store.dtype == np.float32
            count = store.num_deltas
        # Appended artifacts keep the 12-byte record format and the
        # float32 factor files, and the manifest still verifies.
        assert (directory / "deltas.bin").stat().st_size == DeltaFile.size_bytes(
            count, bytes_per_value=4
        )
        assert np.load(directory / "v.npy").dtype == np.float32
        assert verify_manifest(directory, deep=True).ok

    def test_appended_answers_close_to_float64_pipeline(self, data, models, tmp_path):
        """Both precisions fold the same new days in about equally well
        (measured against the data — the models differ in k_opt)."""
        import shutil

        m64, m32 = models
        d64, d32 = tmp_path / "m64", tmp_path / "m32"
        shutil.copytree(m64, d64)
        shutil.copytree(m32, d32)
        new_cols = data[:200, :7] * 1.01
        append_columns(d64, new_cols)
        append_columns(d32, new_cols)
        with CompressedMatrix.open(d64) as full, CompressedMatrix.open(d32) as half:
            recon64 = full.reconstruct_all()[:, 366:]
            recon32 = half.reconstruct_all()[:, 366:]
        norm = np.linalg.norm(new_cols)
        rel64 = np.linalg.norm(recon64 - new_cols) / norm
        rel32 = np.linalg.norm(recon32 - new_cols) / norm
        assert rel32 <= max(rel64 * 1.5, rel64 + 0.01)
