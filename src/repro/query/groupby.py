"""Grouped aggregates: one result per customer or per day.

The decision-support queries the paper motivates often group rather
than collapse: 'total volume per day across all customers' (a column
profile) or 'total volume per customer over a period' (a row profile).
Both have factor-space evaluations on an SVD/SVDD model:

- per-row sums over column set S:   ``(U * lambda) @ (sum_{j in S} v_j)``
  — O(N * k);
- per-column sums over row set R:   ``(sum_{i in R} u_i * lambda) @ V^t``
  — O(M * k);

plus a vectorized correction pass over the sorted
:class:`~repro.core.delta_index.DeltaIndex`.  Against non-factor
backends the same API streams rows.

When the backend carries a materialized summary store
(:class:`repro.summaries.SummaryStore`), full-axis profiles are
answered straight from the persisted rollups — zero ``u.mat`` pages —
and :func:`bucket_series` serves whole dashboard series ("sum by
month", "top customers") the same way, merging a streamed residual
when the store's coverage lags the model after a deferred append.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import QueryError
from repro.obs.registry import registry as _obs
from repro.query.engine import _Backend
from repro.query.fastpath import _delta_index_of, _unwrap
from repro.query.selection import Selection
from repro.summaries.compute import S_MAX, S_MIN, S_SUM, S_SUMSQ, bucket_stats
from repro.summaries.compute import level_edges as _level_edges
from repro.summaries.store import GROUP_BY_AXES, _finalize_vector

#: Rows per block when streaming profile residuals.
_PROFILE_BLOCK_ROWS = 512


def _resolve(backend_shape, selection: Selection):
    return selection.resolve(backend_shape)


def _summary_store_of(backend, shape):
    """The backend's summary store when it describes ``shape``, else None."""
    store = getattr(backend, "summaries", None)
    if store is None:
        return None
    if (store.model_rows, store.model_cols) != tuple(shape):
        return None
    return store


def row_totals(backend, selection: Selection | None = None) -> np.ndarray:
    """Per-selected-row sums over the selected columns.

    Returns one value per selected row, ordered by row index.  Uses the
    factor-space path on SVD/SVDD backends, row streaming otherwise.
    """
    adapter = _Backend(backend)
    selection = selection or Selection()
    row_idx, col_idx = _resolve(adapter.shape, selection)

    store = _summary_store_of(backend, adapter.shape)
    if store is not None and store.fresh and col_idx.size == adapter.shape[1]:
        # Full-width selection: the per-customer profile already holds
        # the delta-corrected answer; no U pages touched.
        return np.asarray(store.row_stats[S_SUM][row_idx], dtype=np.float64).copy()

    svd = _unwrap(backend)
    if svd is not None:
        scaled_u = svd.u[row_idx] * svd.eigenvalues
        totals = scaled_u @ svd.v[col_idx].sum(axis=0)
        index = _delta_index_of(backend)
        if index is not None and len(index) > 0:
            row_pos, _col_pos, _rows, _cols, values = index.select(row_idx, col_idx)
            np.add.at(totals, row_pos, values)
        return totals

    return np.array(
        [float(adapter.row(int(index))[col_idx].sum()) for index in row_idx]
    )


def column_totals(backend, selection: Selection | None = None) -> np.ndarray:
    """Per-selected-column sums over the selected rows.

    Returns one value per selected column, ordered by column index.
    """
    adapter = _Backend(backend)
    selection = selection or Selection()
    row_idx, col_idx = _resolve(adapter.shape, selection)

    store = _summary_store_of(backend, adapter.shape)
    if store is not None and store.fresh and row_idx.size == adapter.shape[0]:
        # Full-height selection: answer from the per-day profile.
        return np.asarray(store.col_stats[S_SUM][col_idx], dtype=np.float64).copy()

    svd = _unwrap(backend)
    if svd is not None:
        summed_u = (svd.u[row_idx] * svd.eigenvalues).sum(axis=0)
        totals = svd.v[col_idx] @ summed_u
        index = _delta_index_of(backend)
        if index is not None and len(index) > 0:
            _row_pos, col_pos, _rows, _cols, values = index.select(row_idx, col_idx)
            np.add.at(totals, col_pos, values)
        return totals

    totals = np.zeros(col_idx.size)
    for index in row_idx:
        totals += adapter.row(int(index))[col_idx]
    return totals


def top_rows(backend, count: int, selection: Selection | None = None) -> np.ndarray:
    """Indices of the ``count`` largest rows by total over the selection.

    The paper's marketing-analyst question: 'who are our biggest
    customers?'  Evaluated in factor space when possible.
    """
    if count < 1:
        raise QueryError(f"count must be >= 1, got {count}")
    adapter = _Backend(backend)
    selection = selection or Selection()
    row_idx, _ = _resolve(adapter.shape, selection)
    totals = row_totals(backend, selection)
    order = np.argsort(totals)[::-1][:count]
    return row_idx[order]


# -- bucket series (dashboard group-bys) --------------------------------


def _stream_profiles(adapter, row_idx, col_idx):
    """Per-row and per-column 4-stat profiles of one rectangle, streamed.

    Returns ``(row_stats, col_stats)`` of shapes ``(4, len(row_idx))``
    and ``(4, len(col_idx))`` in ``S_SUM/S_SUMSQ/S_MIN/S_MAX`` order.
    This is the residual evaluator for coverage a deferred append left
    behind the summary store.
    """
    rows_n, cols_n = int(row_idx.size), int(col_idx.size)
    row_stats = np.zeros((4, rows_n))
    col_stats = np.zeros((4, cols_n))
    row_stats[S_MIN] = col_stats[S_MIN] = np.inf
    row_stats[S_MAX] = col_stats[S_MAX] = -np.inf
    if rows_n == 0 or cols_n == 0:
        return row_stats, col_stats
    for start in range(0, rows_n, _PROFILE_BLOCK_ROWS):
        chunk = row_idx[start : start + _PROFILE_BLOCK_ROWS]
        block = adapter.block(chunk, col_idx)
        if block is None:
            block = np.stack([adapter.row(int(index))[col_idx] for index in chunk])
        rows = slice(start, start + int(chunk.size))
        row_stats[S_SUM, rows] = block.sum(axis=1)
        row_stats[S_SUMSQ, rows] = (block * block).sum(axis=1)
        row_stats[S_MIN, rows] = block.min(axis=1)
        row_stats[S_MAX, rows] = block.max(axis=1)
        col_stats[S_SUM] += block.sum(axis=0)
        col_stats[S_SUMSQ] += (block * block).sum(axis=0)
        np.minimum(col_stats[S_MIN], block.min(axis=0), out=col_stats[S_MIN])
        np.maximum(col_stats[S_MAX], block.max(axis=0), out=col_stats[S_MAX])
    return row_stats, col_stats


def _merge_stats(left, right):
    """Merge two 4-stat arrays over disjoint cell sets, elementwise."""
    merged = np.empty_like(left)
    merged[S_SUM] = left[S_SUM] + right[S_SUM]
    merged[S_SUMSQ] = left[S_SUMSQ] + right[S_SUMSQ]
    merged[S_MIN] = np.minimum(left[S_MIN], right[S_MIN])
    merged[S_MAX] = np.maximum(left[S_MAX], right[S_MAX])
    return merged


def _combined_col_profile(adapter, store):
    """Full-model per-column profile: summary core + streamed residual."""
    num_rows, num_cols = adapter.shape
    cr, cc = store.covered_rows, store.covered_cols
    full = np.zeros((4, num_cols))
    full[S_MIN] = np.inf
    full[S_MAX] = -np.inf
    full[:, :cc] = np.asarray(store.col_stats, dtype=np.float64)
    if cc < num_cols:  # appended days, covered customers
        _rows, tail = _stream_profiles(
            adapter, np.arange(cr, dtype=np.int64), np.arange(cc, num_cols)
        )
        full[:, cc:] = tail
    if cr < num_rows:  # appended customers, every day
        _rows, below = _stream_profiles(
            adapter, np.arange(cr, num_rows, dtype=np.int64), np.arange(num_cols)
        )
        full = _merge_stats(full, below)
    return full


def _combined_row_profile(adapter, store):
    """Full-model per-row profile: summary core + streamed residual."""
    num_rows, num_cols = adapter.shape
    cr, cc = store.covered_rows, store.covered_cols
    full = np.zeros((4, num_rows))
    full[S_MIN] = np.inf
    full[S_MAX] = -np.inf
    full[:, :cr] = np.asarray(store.row_stats, dtype=np.float64)
    if cc < num_cols:
        tail, _cols = _stream_profiles(
            adapter, np.arange(cr, dtype=np.int64), np.arange(cc, num_cols)
        )
        full[:, :cr] = _merge_stats(full[:, :cr], tail)
    if cr < num_rows:
        below, _cols = _stream_profiles(
            adapter, np.arange(cr, num_rows, dtype=np.int64), np.arange(num_cols)
        )
        full[:, cr:] = below
    return full


def bucket_series(backend, by: str, function: str, limit: int | None = None) -> dict:
    """A whole group-by series: one value per bucket of ``by``.

    ``by`` is a time-hierarchy level (``day``/``week``/``month``/
    ``quarter``/``year`` — buckets of columns) or ``customer`` (one
    bucket per row).  ``function`` is any engine aggregate.  ``limit``
    truncates the series: top-``limit`` by value for ``customer``
    (descending), most recent ``limit`` buckets for time levels.

    Served from the materialized summary store when the backend has a
    fresh one (``path="summary"``, zero ``u.mat`` pages); a stale store
    contributes its core with the uncovered edge streamed and merged
    (``path="summary+stream"``); without a store the whole series is
    streamed (``path="stream"``).  Returns a JSON-ready dict with the
    series, its bucket edges or labels, and the path taken.
    """
    if by not in GROUP_BY_AXES:
        raise QueryError(
            f"unknown group-by axis {by!r}; expected one of {GROUP_BY_AXES}"
        )
    if limit is not None and limit < 1:
        raise QueryError(f"limit must be >= 1, got {limit}")
    adapter = _Backend(backend)
    num_rows, num_cols = adapter.shape
    store = _summary_store_of(backend, adapter.shape)
    partial = store is not None and not store.fresh
    path = "stream" if store is None else ("summary+stream" if partial else "summary")

    if store is not None and not partial:
        labels_or_edges, values = store.bucket_values(by, function)
    else:
        start_date = store.start_date if store is not None else None
        if by == "customer":
            if store is not None:
                row_stats = _combined_row_profile(adapter, store)
            else:
                row_stats, _cols = _stream_profiles(
                    adapter,
                    np.arange(num_rows, dtype=np.int64),
                    np.arange(num_cols, dtype=np.int64),
                )
            labels_or_edges = np.arange(num_rows, dtype=np.int64)
            counts = np.full(num_rows, float(num_cols))
            values = _finalize_vector(function, row_stats, counts)
        else:
            if store is not None:
                col_stats = _combined_col_profile(adapter, store)
            else:
                _rows, col_stats = _stream_profiles(
                    adapter,
                    np.arange(num_rows, dtype=np.int64),
                    np.arange(num_cols, dtype=np.int64),
                )
            edges = _level_edges(by, num_cols, start_date)
            bucketed = bucket_stats(col_stats, edges)
            counts = np.diff(edges).astype(np.float64) * num_rows
            labels_or_edges, values = edges, _finalize_vector(
                function, bucketed, counts
            )

    if by == "customer":
        labels = labels_or_edges
        if limit is not None and limit < values.size:
            order = np.argsort(values)[::-1][:limit]
            labels, values = labels[order], values[order]
        payload = {"labels": [int(label) for label in labels]}
    else:
        edges = labels_or_edges
        if limit is not None and (edges.size - 1) > limit:
            edges = edges[-(limit + 1) :]
            values = values[-limit:]
        payload = {"edges": [int(edge) for edge in edges]}
    if _obs.enabled:
        _obs.counter(f"groupby.path.{path}").inc()
    return {
        "by": by,
        "function": function,
        "buckets": int(values.size),
        "values": [float(value) for value in values],
        "path": path,
        "partial": partial,
        **payload,
    }
