"""Deadline propagation through both executors.

Deadlines are ``time.monotonic_ns`` instants: on Linux the monotonic
clock is system-wide, so an instant computed in the parent means the
same thing inside a forked worker — which is what lets the worker drop
an expired task *before* doing its work.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.build import build_compressed
from repro.exceptions import DeadlineExceededError
from repro.query.executor import QueryExecutor
from repro.query.process_executor import ProcessQueryExecutor


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory):
    rng = np.random.default_rng(11)
    data = rng.standard_normal((50, 4)) @ rng.standard_normal((4, 30))
    directory = tmp_path_factory.mktemp("deadline") / "model"
    build_compressed(data, directory, budget_fraction=0.2).close()
    return directory


class TestThreadExecutorDeadlines:
    def test_expired_deadline_drops_before_execution(self, low_rank):
        with QueryExecutor(low_rank, max_workers=2) as pool:
            future = pool.submit((0, 0), deadline_ns=time.monotonic_ns() - 1)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10)

    def test_generous_deadline_answers_normally(self, low_rank):
        with QueryExecutor(low_rank, max_workers=2) as pool:
            deadline_ns = time.monotonic_ns() + 60 * 10**9
            result = pool.submit((0, 0), deadline_ns=deadline_ns).result(
                timeout=10
            )
            assert result.value == pytest.approx(low_rank[0, 0])

    def test_no_deadline_still_works(self, low_rank):
        with QueryExecutor(low_rank, max_workers=2) as pool:
            assert pool.submit((1, 2)).result(timeout=10).cells_touched == 1

    def test_drop_counts_in_registry(self, low_rank, enabled_registry):
        with QueryExecutor(low_rank, max_workers=1) as pool:
            future = pool.submit((0, 0), deadline_ns=time.monotonic_ns() - 1)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10)
        assert enabled_registry.counter("executor.deadline_drops").value >= 1


class TestProcessExecutorDeadlines:
    def test_expired_deadline_drops_in_worker(self, model_dir):
        with ProcessQueryExecutor(model_dir, max_workers=1) as pool:
            future = pool.submit((0, 0), deadline_ns=time.monotonic_ns() - 1)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30)
            # The drop is counted in the worker's piggybacked stats.
            assert pool.worker_metrics()["deadline_drops"] >= 1

    def test_generous_deadline_answers_normally(self, model_dir):
        with ProcessQueryExecutor(model_dir, max_workers=1) as pool:
            deadline_ns = time.monotonic_ns() + 60 * 10**9
            result = pool.submit(
                "sum() rows 0:10", deadline_ns=deadline_ns
            ).result(timeout=30)
            assert np.isfinite(result.value)

    def test_error_crosses_pickle_boundary_intact(self, model_dir):
        with ProcessQueryExecutor(model_dir, max_workers=1) as pool:
            future = pool.submit((0, 0), deadline_ns=time.monotonic_ns() - 1)
            try:
                future.result(timeout=30)
                raise AssertionError("expected DeadlineExceededError")
            except DeadlineExceededError as exc:
                assert isinstance(exc, TimeoutError)
                assert "deadline" in str(exc)

    def test_drop_does_not_poison_chunkmates(self, model_dir):
        """A dropped task fails alone; other queries in the same pool
        keep answering."""
        with ProcessQueryExecutor(model_dir, max_workers=1) as pool:
            dead = pool.submit((0, 0), deadline_ns=time.monotonic_ns() - 1)
            alive = pool.submit((1, 1))
            with pytest.raises(DeadlineExceededError):
                dead.result(timeout=30)
            assert alive.result(timeout=30).cells_touched == 1

    def test_retired_totals_keep_drops_monotonic(self, model_dir):
        """Worker stats survive a pool rebuild via the retired totals."""
        from repro.query.process_executor import _CrashProbe

        with ProcessQueryExecutor(model_dir, max_workers=1) as pool:
            with pytest.raises(DeadlineExceededError):
                pool.submit(
                    (0, 0), deadline_ns=time.monotonic_ns() - 1
                ).result(timeout=30)
            before = pool.worker_metrics()["deadline_drops"]
            assert before >= 1
            with pytest.raises(Exception):
                pool.submit(_CrashProbe()).result(timeout=30)
            pool.submit((0, 0)).result(timeout=30)  # rebuilds the pool
            assert pool.worker_metrics()["deadline_drops"] >= before


class TestRebuildHook:
    def test_on_rebuild_fires_per_pool_rebuild(self, model_dir):
        from repro.query.process_executor import _CrashProbe

        events = []
        with ProcessQueryExecutor(
            model_dir, max_workers=1, on_rebuild=lambda: events.append(1)
        ) as pool:
            assert pool.restarts == 0
            with pytest.raises(Exception):
                pool.submit(_CrashProbe()).result(timeout=30)
            pool.submit((0, 0)).result(timeout=30)
            assert pool.restarts == 1
            assert len(events) == 1

    def test_failing_hook_does_not_break_dispatch(self, model_dir):
        from repro.query.process_executor import _CrashProbe

        def bad_hook():
            raise RuntimeError("observer bug")

        with ProcessQueryExecutor(
            model_dir, max_workers=1, on_rebuild=bad_hook
        ) as pool:
            with pytest.raises(Exception):
                pool.submit(_CrashProbe()).result(timeout=30)
            assert pool.submit((2, 3)).result(timeout=30).cells_touched == 1
