"""Column standardization as a composable preprocessing step.

On heterogeneous vectors (the paper's patient-record setting, §2.3),
raw SVD spends its components on whatever columns happen to have the
biggest *units* — cholesterol in mg/dL out-votes HbA1c in percent a
hundred to one.  The classical fix is PCA's: standardize each column to
zero mean and unit variance before decomposing, and undo the transform
on reconstruction.

:class:`StandardizedMethod` wraps any
:class:`~repro.methods.base.CompressionMethod` with that transform.
The per-column means and scales are part of the model and are charged
to the space budget (``2 * M`` numbers), so comparisons stay honest.
"""

from __future__ import annotations

import numpy as np

from repro.core.space import BYTES_PER_VALUE, uncompressed_bytes
from repro.exceptions import BudgetError
from repro.methods.base import CompressionMethod, FittedModel


class StandardizedModel(FittedModel):
    """A fitted inner model operating in standardized column space."""

    def __init__(
        self,
        inner: FittedModel,
        means: np.ndarray,
        scales: np.ndarray,
        num_cols: int,
    ) -> None:
        super().__init__(inner.shape[0], num_cols)
        self._inner = inner
        self._means = means
        self._scales = scales

    @property
    def inner(self) -> FittedModel:
        """The wrapped model (in standardized space)."""
        return self._inner

    def reconstruct_row(self, row: int) -> np.ndarray:
        return self._inner.reconstruct_row(row) * self._scales + self._means

    def reconstruct_cell(self, row: int, col: int) -> float:
        self._check_cell(row, col)
        return float(
            self._inner.reconstruct_cell(row, col) * self._scales[col]
            + self._means[col]
        )

    def reconstruct(self) -> np.ndarray:
        return self._inner.reconstruct() * self._scales + self._means

    def space_bytes(self) -> int:
        # Inner model + the stored means and scales.
        return self._inner.space_bytes() + 2 * self._num_cols * BYTES_PER_VALUE


class StandardizedMethod(CompressionMethod):
    """Wrap any compression method with per-column standardization.

    The column statistics consume ``2*M*b`` bytes of the budget; the
    remainder goes to the inner method.  Column scales of zero
    (constant columns) standardize to zero and reconstruct exactly from
    the stored mean.

    Args:
        inner: the method to run in standardized space.
    """

    def __init__(self, inner: CompressionMethod) -> None:
        self.inner = inner
        self.name = f"std+{inner.name}"

    def fit(self, matrix: np.ndarray, budget_fraction: float) -> StandardizedModel:
        arr = self._validate(matrix, budget_fraction)
        num_rows, num_cols = arr.shape
        stats_bytes = 2 * num_cols * BYTES_PER_VALUE
        total = uncompressed_bytes(num_rows, num_cols)
        inner_fraction = budget_fraction - stats_bytes / total
        if inner_fraction <= 0:
            raise BudgetError(
                f"budget {budget_fraction:.3%} cannot even hold the per-column "
                f"statistics ({stats_bytes / total:.3%})"
            )
        means = arr.mean(axis=0)
        scales = arr.std(axis=0)
        safe_scales = np.where(scales > 0, scales, 1.0)
        standardized = (arr - means) / safe_scales
        inner_model = self.inner.fit(standardized, inner_fraction)
        return StandardizedModel(
            inner_model, means, np.where(scales > 0, scales, 0.0), num_cols
        )
