"""Lightweight span-based tracing with context propagation.

A span is a named, timed section of work.  Spans nest through a
``contextvars`` stack, so a layer can open a span without knowing who
called it — ``QueryEngine.aggregate`` opens ``query.aggregate`` and the
factor fast path's ``query.factor.gemm`` attaches underneath it
automatically, which is how a :class:`~repro.obs.profile.QueryProfile`
recovers per-phase timings without the engine threading timer objects
through every call.

When the process-wide registry is disabled, :func:`span` returns a
shared no-op singleton: no allocation, no clock read, no context-var
write — the hot path pays one attribute load and a branch.

Every *finished* span also records its duration into the registry
histogram ``span.<name>``, so long-lived processes accumulate timing
distributions (e.g. ``span.build.pass2`` across many builds) that
``repro stats``-style dumps can export.

**Traces cross process boundaries.**  Every root span carries a
``trace_id`` — taken from the ambient :func:`trace` context when one is
active, freshly minted otherwise — and child spans inherit their
parent's.  The executors open a :func:`trace` context per submitted
query, ship the id through the pickle boundary to worker processes, and
the worker's finished span tree (serialized with :meth:`Span.to_dict`)
is grafted back into the caller's live span with :func:`graft` — so a
process-mode ``--profile`` run shows one coherent tree spanning caller
and worker, joined on the trace id.
"""

from __future__ import annotations

import contextvars
import time
import uuid

from repro.obs.registry import registry

__all__ = [
    "NULL_SPAN",
    "Span",
    "current_span",
    "current_trace_id",
    "graft",
    "new_trace_id",
    "span",
    "trace",
]

_ACTIVE: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

_TRACE: contextvars.ContextVar["str | None"] = contextvars.ContextVar(
    "repro_obs_trace_id", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return uuid.uuid4().hex[:16]


def current_trace_id() -> str | None:
    """The trace id of the ambient :func:`trace` context, if any."""
    return _TRACE.get()


class _TraceContext:
    """Context manager binding a trace id to the current context."""

    __slots__ = ("trace_id", "_token")

    def __init__(self, trace_id: str | None) -> None:
        self.trace_id = trace_id or new_trace_id()
        self._token: contextvars.Token | None = None

    def __enter__(self) -> str:
        self._token = _TRACE.set(self.trace_id)
        return self.trace_id

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _TRACE.reset(self._token)
            self._token = None


def trace(trace_id: str | None = None) -> _TraceContext:
    """Bind ``trace_id`` (fresh when None) to the context for a block.

    Root spans opened inside the block adopt it, as do structured log
    records — the join key between logs, profiles and span trees.
    """
    return _TraceContext(trace_id)


class Span:
    """One timed section; use as a context manager."""

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "start_ns",
        "end_ns",
        "children",
        "_token",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = attrs or {}
        self.trace_id: str | None = None
        self.start_ns = 0
        self.end_ns = 0
        self.children: list["Span"] = []
        self._token: contextvars.Token | None = None

    def __enter__(self) -> "Span":
        parent = _ACTIVE.get()
        if parent is not None:
            parent.children.append(self)
            self.trace_id = parent.trace_id
        else:
            # Root span: join the ambient trace, or start a new one.
            self.trace_id = _TRACE.get() or new_trace_id()
        self._token = _ACTIVE.set(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end_ns = time.perf_counter_ns()
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        registry.histogram(f"span.{self.name}").observe(self.duration_ns)

    def set(self, **attrs) -> "Span":
        """Attach key/value attributes to the span."""
        self.attrs.update(attrs)
        return self

    @property
    def duration_ns(self) -> int:
        """Elapsed nanoseconds (0 until the span has finished)."""
        if self.end_ns:
            return self.end_ns - self.start_ns
        return 0

    def find(self, name: str) -> "Span | None":
        """First descendant span named ``name`` (depth-first), or None."""
        for child in self.children:
            if child.name == name:
                return child
            nested = child.find(name)
            if nested is not None:
                return nested
        return None

    def total_ns(self, name: str) -> int:
        """Summed duration of all descendant spans named ``name``."""
        total = 0
        for child in self.children:
            if child.name == name:
                total += child.duration_ns
            total += child.total_ns(name)
        return total

    def to_dict(self) -> dict:
        """The span tree (name, trace id, duration, attrs, children),
        JSON-ready — and the wire format worker processes ship finished
        trees back in (see :meth:`from_dict`)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a finished span tree from its :meth:`to_dict` form.

        The reconstructed spans carry the original names, attrs, trace
        ids and durations; they are already "finished" (never entered),
        so grafting them never touches the context stack or re-records
        their durations into the registry.
        """
        span = cls(data["name"], dict(data.get("attrs") or {}))
        span.trace_id = data.get("trace_id")
        span.end_ns = int(data.get("duration_ns") or 0)
        span.children = [
            cls.from_dict(child) for child in data.get("children") or ()
        ]
        return span


class _NullSpan:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    children: tuple = ()
    attrs: dict = {}
    duration_ns = 0
    trace_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def find(self, name: str) -> None:
        return None

    def total_ns(self, name: str) -> int:
        return 0


NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span named ``name`` (no-op singleton when disabled)."""
    if not registry.enabled:
        return NULL_SPAN
    return Span(name, attrs or None)


def current_span() -> Span | None:
    """The innermost active real span in this context, if any."""
    return _ACTIVE.get()


def graft(tree: dict | None) -> Span | None:
    """Attach a serialized span tree under the current active span.

    ``tree`` is a :meth:`Span.to_dict` payload — typically a worker
    process's finished span tree shipped back alongside a query result.
    Grafting it makes the caller's profile/trace output show one
    coherent tree across the process hop.  Returns the reconstructed
    root, or None when ``tree`` is None or no span is active (nothing
    to attach to).
    """
    if tree is None:
        return None
    parent = _ACTIVE.get()
    if parent is None:
        return None
    child = Span.from_dict(tree)
    parent.children.append(child)
    return child
