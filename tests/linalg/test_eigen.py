"""Tests for the symmetric eigensolvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.linalg import (
    EigenResult,
    JacobiEigensolver,
    NumpyEigensolver,
    PowerIterationEigensolver,
    default_eigensolver,
)

SOLVERS = [NumpyEigensolver(), JacobiEigensolver(), PowerIterationEigensolver()]
SOLVER_IDS = ["numpy", "jacobi", "power"]


def random_symmetric(rng: np.random.Generator, n: int) -> np.ndarray:
    a = rng.standard_normal((n, n))
    return (a + a.T) / 2.0


def random_psd(rng: np.random.Generator, n: int) -> np.ndarray:
    a = rng.standard_normal((n, n))
    return a @ a.T


@pytest.mark.parametrize("solver", SOLVERS, ids=SOLVER_IDS)
class TestAllSolvers:
    def test_reconstructs_psd_matrix(self, solver, rng):
        mat = random_psd(rng, 10)
        result = solver.decompose(mat)
        approx = result.vectors @ np.diag(result.values) @ result.vectors.T
        assert np.allclose(approx, mat, atol=1e-7)

    def test_eigenvalues_sorted_decreasing(self, solver, rng):
        result = solver.decompose(random_psd(rng, 8))
        assert np.all(np.diff(result.values) <= 1e-9)

    def test_eigenvectors_orthonormal(self, solver, rng):
        result = solver.decompose(random_psd(rng, 9))
        gram = result.vectors.T @ result.vectors
        assert np.allclose(gram, np.eye(9), atol=1e-7)

    def test_eigenpair_equation_holds(self, solver, rng):
        mat = random_psd(rng, 7)
        result = solver.decompose(mat)
        for j in range(7):
            lhs = mat @ result.vectors[:, j]
            rhs = result.values[j] * result.vectors[:, j]
            assert np.allclose(lhs, rhs, atol=1e-6)

    def test_identity_matrix(self, solver):
        result = solver.decompose(np.eye(5))
        assert np.allclose(result.values, 1.0)

    def test_one_by_one(self, solver):
        result = solver.decompose(np.array([[4.0]]))
        assert result.values[0] == pytest.approx(4.0)
        assert abs(result.vectors[0, 0]) == pytest.approx(1.0)

    def test_diagonal_matrix(self, solver):
        result = solver.decompose(np.diag([5.0, 3.0, 1.0]))
        assert np.allclose(result.values, [5.0, 3.0, 1.0], atol=1e-9)

    def test_decompose_top_truncates(self, solver, rng):
        mat = random_psd(rng, 10)
        full = solver.decompose(mat)
        top = solver.decompose_top(mat, 3)
        assert top.values.shape == (3,)
        assert np.allclose(top.values, full.values[:3], atol=1e-6)

    def test_rejects_non_square(self, solver):
        with pytest.raises(ShapeError):
            solver.decompose(np.ones((3, 4)))

    def test_rejects_asymmetric(self, solver):
        mat = np.array([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ShapeError):
            solver.decompose(mat)

    def test_rejects_nan(self, solver):
        mat = np.array([[1.0, np.nan], [np.nan, 1.0]])
        with pytest.raises(ShapeError):
            solver.decompose(mat)


class TestCrossValidation:
    """The from-scratch solvers must agree with LAPACK."""

    def test_jacobi_matches_numpy_indefinite(self, rng):
        mat = random_symmetric(rng, 12)  # indefinite is fine for Jacobi
        ref = NumpyEigensolver().decompose(mat)
        jac = JacobiEigensolver().decompose(mat)
        assert np.allclose(jac.values, ref.values, atol=1e-8)
        # Eigenvectors agree up to sign (already normalized); compare
        # projectors to be basis-robust against degenerate eigenvalues.
        for j in range(12):
            proj_ref = np.outer(ref.vectors[:, j], ref.vectors[:, j])
            proj_jac = np.outer(jac.vectors[:, j], jac.vectors[:, j])
            if abs(ref.values[j]) > 1e-8 and (
                j == 0 or abs(ref.values[j] - ref.values[j - 1]) > 1e-6
            ):
                assert np.allclose(proj_ref, proj_jac, atol=1e-6)

    def test_power_matches_numpy_on_psd(self, rng):
        mat = random_psd(rng, 10)
        ref = NumpyEigensolver().decompose_top(mat, 4)
        pwr = PowerIterationEigensolver().decompose_top(mat, 4)
        assert np.allclose(pwr.values, ref.values, rtol=1e-6)


class TestJacobiSpecifics:
    def test_invalid_tol(self):
        with pytest.raises(ConfigurationError):
            JacobiEigensolver(tol=0.0)

    def test_invalid_sweeps(self):
        with pytest.raises(ConfigurationError):
            JacobiEigensolver(max_sweeps=0)

    def test_large_scale_matrix(self, rng):
        mat = random_psd(rng, 6) * 1e9
        result = JacobiEigensolver().decompose(mat)
        approx = result.vectors @ np.diag(result.values) @ result.vectors.T
        assert np.allclose(approx, mat, rtol=1e-9)


class TestPowerIterationSpecifics:
    def test_rejects_indefinite(self, rng):
        mat = np.diag([1.0, -2.0, 0.5])
        with pytest.raises(ConfigurationError):
            PowerIterationEigensolver().decompose(mat)

    def test_zero_matrix(self):
        result = PowerIterationEigensolver().decompose(np.zeros((4, 4)))
        assert np.allclose(result.values, 0.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PowerIterationEigensolver(tol=-1.0)
        with pytest.raises(ConfigurationError):
            PowerIterationEigensolver(max_iterations=0)


class TestEigenResult:
    def test_top_negative_rejected(self, rng):
        result = NumpyEigensolver().decompose(random_psd(rng, 4))
        with pytest.raises(ConfigurationError):
            result.top(-1)

    def test_top_clamps_to_size(self, rng):
        result = NumpyEigensolver().decompose(random_psd(rng, 4))
        assert result.top(99).values.shape == (4,)

    def test_default_solver_is_usable(self, rng):
        mat = random_psd(rng, 5)
        result = default_eigensolver().decompose(mat)
        assert isinstance(result, EigenResult)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    size=st.integers(min_value=2, max_value=8),
)
def test_property_jacobi_reconstructs_any_gram_matrix(seed, size):
    """Any Gram matrix decomposes exactly (the SVD pipeline's core need)."""
    sample_rng = np.random.default_rng(seed)
    x = sample_rng.standard_normal((size + 3, size))
    gram = x.T @ x
    result = JacobiEigensolver().decompose(gram)
    approx = result.vectors @ np.diag(result.values) @ result.vectors.T
    scale = max(1.0, np.abs(gram).max())
    assert np.abs(approx - gram).max() <= 1e-8 * scale
    assert np.all(result.values >= -1e-9 * scale)
